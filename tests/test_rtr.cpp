// Tests for the RPKI-to-Router protocol (RFC 8210): wire format
// round-trips, the serial handshake, incremental diffs, cache resets,
// and end-to-end equivalence with direct relying-party output.
#include <gtest/gtest.h>

#include "rpki/rtr.h"
#include "util/rng.h"

namespace {

using namespace rovista::rpki;
using namespace rovista::rpki::rtr;
using rovista::net::Ipv4Address;
using rovista::net::Ipv4Prefix;

Ipv4Prefix pfx(const char* s) { return *Ipv4Prefix::parse(s); }

Vrp vrp(const char* prefix, std::uint8_t max_len, std::uint32_t asn) {
  return Vrp{pfx(prefix), max_len, asn};
}

// ---------- wire format ----------

TEST(RtrWire, SerialQueryRoundTrip) {
  const Pdu q = make_serial_query(0xBEEF, 42);
  const auto bytes = q.serialize();
  EXPECT_EQ(bytes.size(), 12u);
  EXPECT_EQ(bytes[0], kProtocolVersion);
  EXPECT_EQ(bytes[1], static_cast<std::uint8_t>(PduType::kSerialQuery));
  const auto parsed = Pdu::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, 12u);
  EXPECT_EQ(parsed->first.type, PduType::kSerialQuery);
  EXPECT_EQ(parsed->first.session_id, 0xBEEF);
  EXPECT_EQ(parsed->first.serial, 42u);
}

TEST(RtrWire, Ipv4PrefixRoundTrip) {
  const Pdu p = make_ipv4_prefix(true, vrp("10.1.0.0/16", 24, 65001));
  const auto bytes = p.serialize();
  EXPECT_EQ(bytes.size(), 20u);
  const auto parsed = Pdu::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->first.announce);
  EXPECT_EQ(parsed->first.prefix_length, 16);
  EXPECT_EQ(parsed->first.max_length, 24);
  EXPECT_EQ(parsed->first.asn, 65001u);
  EXPECT_EQ(parsed->first.prefix, *Ipv4Address::parse("10.1.0.0"));
}

TEST(RtrWire, WithdrawFlag) {
  const Pdu p = make_ipv4_prefix(false, vrp("10.1.0.0/16", 16, 65001));
  const auto parsed = Pdu::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->first.announce);
}

TEST(RtrWire, EndOfDataCarriesTimers) {
  Pdu p = make_end_of_data(7, 99);
  p.refresh_interval = 100;
  p.retry_interval = 200;
  p.expire_interval = 300;
  const auto parsed = Pdu::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, 24u);
  EXPECT_EQ(parsed->first.serial, 99u);
  EXPECT_EQ(parsed->first.refresh_interval, 100u);
  EXPECT_EQ(parsed->first.retry_interval, 200u);
  EXPECT_EQ(parsed->first.expire_interval, 300u);
}

TEST(RtrWire, ErrorReportRoundTrip) {
  const Pdu e = make_error(ErrorCode::kNoDataAvailable, "try later");
  const auto parsed = Pdu::parse(e.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.type, PduType::kErrorReport);
  EXPECT_EQ(parsed->first.error_code, ErrorCode::kNoDataAvailable);
  EXPECT_EQ(parsed->first.error_text, "try later");
}

TEST(RtrWire, ParseRejectsGarbage) {
  EXPECT_FALSE(Pdu::parse({}).has_value());
  std::vector<std::uint8_t> truncated = {1, 1, 0, 0, 0, 0};
  EXPECT_FALSE(Pdu::parse(truncated).has_value());
  // Wrong version byte.
  auto bytes = make_reset_query().serialize();
  bytes[0] = 0;
  EXPECT_FALSE(Pdu::parse(bytes).has_value());
  // Length field larger than buffer.
  bytes = make_reset_query().serialize();
  bytes[7] = 200;
  EXPECT_FALSE(Pdu::parse(bytes).has_value());
  // Bad prefix lengths.
  auto pp = make_ipv4_prefix(true, vrp("10.0.0.0/8", 8, 1)).serialize();
  pp[9] = 40;  // prefix length 40 > 32
  EXPECT_FALSE(Pdu::parse(pp).has_value());
}

TEST(RtrWire, MaxLengthBelowPrefixLengthRejected) {
  auto bytes = make_ipv4_prefix(true, vrp("10.1.0.0/16", 16, 1)).serialize();
  bytes[10] = 8;  // max_length 8 < prefix length 16
  EXPECT_FALSE(Pdu::parse(bytes).has_value());
}

// ---------- cache / router handshake ----------

VrpSet set_of(std::initializer_list<Vrp> vrps) {
  VrpSet out;
  for (const Vrp& v : vrps) out.add(v);
  return out;
}

std::vector<std::uint8_t> to_stream(const std::vector<Pdu>& pdus) {
  std::vector<std::uint8_t> out;
  for (const Pdu& pdu : pdus) {
    const auto b = pdu.serialize();
    out.insert(out.end(), b.begin(), b.end());
  }
  return out;
}

TEST(RtrSession, InitialFullSync) {
  Cache cache(1);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001),
                        vrp("10.2.0.0/16", 24, 65002)}));

  RouterSession router;
  EXPECT_EQ(router.next_query().type, PduType::kResetQuery);
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  EXPECT_TRUE(router.consume_stream(to_stream(response)));
  EXPECT_TRUE(router.synchronized());
  EXPECT_EQ(router.serial(), 1u);
  EXPECT_EQ(router.vrp_count(), 2u);
  EXPECT_EQ(router.vrps().validate(pfx("10.1.0.0/16"), 65001),
            RouteValidity::kValid);
}

TEST(RtrSession, IncrementalDiff) {
  Cache cache(1);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001),
                        vrp("10.2.0.0/16", 16, 65002)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));

  // Publish a new snapshot: one withdrawal, one announcement.
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001),
                        vrp("10.3.0.0/16", 16, 65003)}));
  EXPECT_EQ(router.next_query().type, PduType::kSerialQuery);
  response.clear();
  cache.handle(router.next_query(), response);
  // Cache Response + 1 withdraw + 1 announce + End of Data.
  EXPECT_EQ(response.size(), 4u);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));
  EXPECT_EQ(router.serial(), 2u);
  EXPECT_EQ(router.vrp_count(), 2u);
  EXPECT_EQ(router.vrps().validate(pfx("10.2.0.0/16"), 65002),
            RouteValidity::kUnknown);
  EXPECT_EQ(router.vrps().validate(pfx("10.3.0.0/16"), 65003),
            RouteValidity::kValid);
}

TEST(RtrSession, EmptyDeltaWhenCurrent) {
  Cache cache(1);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));

  response.clear();
  cache.handle(router.next_query(), response);
  EXPECT_EQ(response.size(), 2u);  // response + end of data only
  ASSERT_TRUE(router.consume_stream(to_stream(response)));
  EXPECT_EQ(router.vrp_count(), 1u);
}

TEST(RtrSession, CacheResetWhenHistoryExpired) {
  Cache cache(1, /*history_limit=*/2);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));

  // Burn through more publishes than the history window holds.
  for (int i = 2; i <= 6; ++i) {
    VrpSet next;
    next.add(vrp("10.1.0.0/16", 16, 65001));
    next.add(Vrp{Ipv4Prefix(Ipv4Address(static_cast<std::uint32_t>(i) << 24), 8),
                 8, static_cast<std::uint32_t>(i)});
    cache.publish(next);
  }

  response.clear();
  cache.handle(router.next_query(), response);
  ASSERT_EQ(response.size(), 1u);
  EXPECT_EQ(response[0].type, PduType::kCacheReset);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));
  // The router falls back to a Reset Query and resyncs fully.
  EXPECT_EQ(router.next_query().type, PduType::kResetQuery);
  response.clear();
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));
  EXPECT_EQ(router.serial(), cache.serial());
  EXPECT_EQ(router.vrp_count(), cache.current().size());
}

TEST(RtrSession, SessionMismatchForcesReset) {
  Cache cache(7);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  std::vector<Pdu> response;
  cache.handle(make_serial_query(/*wrong session*/ 8, 1), response);
  ASSERT_EQ(response.size(), 1u);
  EXPECT_EQ(response[0].type, PduType::kCacheReset);
}

TEST(RtrSession, ProtocolErrorsDetected) {
  RouterSession router;
  // Prefix outside a response.
  EXPECT_FALSE(router.consume(make_ipv4_prefix(true,
                                               vrp("10.0.0.0/8", 8, 1))));
  EXPECT_FALSE(router.last_error().empty());
  // Error report.
  RouterSession router2;
  EXPECT_FALSE(router2.consume(make_error(ErrorCode::kCorruptData, "bad")));
  EXPECT_EQ(router2.last_error(), "bad");
  // Malformed stream.
  RouterSession router3;
  const std::vector<std::uint8_t> junk = {1, 2, 3};
  EXPECT_FALSE(router3.consume_stream(junk));
}

TEST(RtrSession, NotifyDoesNotDisturbState) {
  Cache cache(1);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response)));
  EXPECT_TRUE(router.consume(cache.notify()));
  EXPECT_TRUE(router.synchronized());
  EXPECT_EQ(router.vrp_count(), 1u);
}

// Property: after any deterministic sequence of random publishes and
// syncs, the router's VRP set matches the cache snapshot exactly.
class RtrConvergence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RtrConvergence, RouterTracksCacheThroughChurn) {
  rovista::util::Rng rng(GetParam());
  Cache cache(static_cast<std::uint16_t>(GetParam()), 4);
  RouterSession router;

  std::vector<Vrp> pool;
  for (std::uint32_t i = 0; i < 40; ++i) {
    pool.push_back(Vrp{
        Ipv4Prefix(Ipv4Address((i + 1) << 20), 16),
        static_cast<std::uint8_t>(16 + rng.uniform_u64(0, 8)),
        65000 + i});
  }

  for (int round = 0; round < 25; ++round) {
    // Random subset as the new snapshot.
    VrpSet snapshot;
    std::size_t count = 0;
    for (const Vrp& v : pool) {
      if (rng.bernoulli(0.5)) {
        snapshot.add(v);
        ++count;
      }
    }
    cache.publish(snapshot);

    // The router may skip syncs (falls behind the history window).
    if (rng.bernoulli(0.3)) continue;

    for (int attempts = 0; attempts < 3; ++attempts) {
      std::vector<Pdu> response;
      cache.handle(router.next_query(), response);
      ASSERT_TRUE(router.consume_stream(to_stream(response)));
      if (router.synchronized() && router.serial() == cache.serial()) break;
    }
    ASSERT_EQ(router.serial(), cache.serial());
    ASSERT_EQ(router.vrp_count(), count);
    // Spot-check set equality through validation outcomes.
    for (const Vrp& v : pool) {
      EXPECT_EQ(router.vrps().validate(v.prefix, v.asn),
                cache.current().end() !=
                        std::find(cache.current().begin(),
                                  cache.current().end(), v)
                    ? RouteValidity::kValid
                    : RouteValidity::kUnknown);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtrConvergence, ::testing::Values(1, 9, 77));

// ---------- error reports on the wire (RFC 8210 §5.10, §8) ----------
//
// A protocol failure must answer the cache with an Error Report PDU
// carrying the right error code, and that report must itself be a valid
// wire PDU — these tests poison real streams and check the bytes.

TEST(RtrWireErrors, CorruptStreamYieldsCorruptDataReport) {
  Cache cache(3);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  auto stream = to_stream(response);
  // Poison the prefix PDU mid-stream: the Cache Response header is
  // 8 bytes, so byte 9 of the prefix PDU (its prefix-length field) sits
  // at offset 17. Length 40 is unparseable for IPv4.
  ASSERT_GT(stream.size(), 17u);
  stream[17] = 40;
  EXPECT_FALSE(router.consume_stream(stream));
  EXPECT_EQ(router.state(), RouterSession::State::kDown);
  const auto report = router.take_error_report();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->type, PduType::kErrorReport);
  EXPECT_EQ(report->error_code, ErrorCode::kCorruptData);
  // The report must round-trip through the wire format intact.
  const auto parsed = Pdu::parse(report->serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.type, PduType::kErrorReport);
  EXPECT_EQ(parsed->first.error_code, ErrorCode::kCorruptData);
  EXPECT_EQ(parsed->first.error_text, "malformed PDU stream");
  // One report per failure: a second take yields nothing.
  EXPECT_FALSE(router.take_error_report().has_value());
}

TEST(RtrWireErrors, ForeignVersionYieldsUnsupportedVersionReport) {
  auto bytes = make_reset_query().serialize();
  bytes[0] = 0;  // RFC 6810 version under an RFC 8210 session
  RouterSession router;
  EXPECT_FALSE(router.consume_stream(bytes));
  EXPECT_EQ(router.state(), RouterSession::State::kDown);
  const auto report = router.take_error_report();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->error_code, ErrorCode::kUnsupportedVersion);
  const auto parsed = Pdu::parse(report->serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->first.error_code, ErrorCode::kUnsupportedVersion);
}

TEST(RtrWireErrors, UnknownTypeYieldsUnsupportedPduTypeReport) {
  auto bytes = make_reset_query().serialize();
  bytes[1] = 9;  // valid header, type 9 is unassigned in RFC 8210
  RouterSession router;
  EXPECT_FALSE(router.consume_stream(bytes));
  const auto report = router.take_error_report();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->error_code, ErrorCode::kUnsupportedPduType);
  EXPECT_EQ(report->error_text, "unsupported PDU type");
}

TEST(RtrWireErrors, ErrorReportNeverAnsweredWithErrorReport) {
  RouterSession router;
  EXPECT_FALSE(
      router.consume(make_error(ErrorCode::kInternalError, "cache died")));
  EXPECT_EQ(router.state(), RouterSession::State::kDown);
  EXPECT_EQ(router.last_error(), "cache died");
  // §5.10: an Error Report MUST NOT be answered with an Error Report.
  EXPECT_FALSE(router.take_error_report().has_value());
}

// ---------- session lifecycle (RFC 8210 §6, §10) ----------

TEST(RtrLifecycle, StateTransitions) {
  Cache cache(1);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  EXPECT_EQ(router.state(), RouterSession::State::kConnecting);
  // Never synchronized: no data the router may act on.
  EXPECT_FALSE(router.effective_vrps(0).has_value());

  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response), /*now=*/50));
  EXPECT_EQ(router.state(), RouterSession::State::kSynchronized);
  EXPECT_EQ(router.synchronized_at(), 50);
  ASSERT_TRUE(router.effective_vrps(50).has_value());

  // A dropped transport goes kDown, but the already-synced data stays
  // usable until the expire interval passes (§10).
  router.connection_lost(/*now=*/60);
  EXPECT_EQ(router.state(), RouterSession::State::kDown);
  EXPECT_TRUE(router.effective_vrps(60).has_value());
}

TEST(RtrLifecycle, RetryBackoffDoublesPerConsecutiveFailure) {
  RouterSession router;
  const Pdu stray = make_ipv4_prefix(true, vrp("10.0.0.0/8", 8, 1));
  const TimeSec base = router.retry_interval();  // §5.8 default until EOD

  // First failure at t=0: retry after one retry interval.
  EXPECT_FALSE(router.consume(stray, /*now=*/0));
  EXPECT_FALSE(router.retry_due(base - 1));
  EXPECT_TRUE(router.retry_due(base));

  // Second consecutive failure at t=base: window doubles.
  EXPECT_FALSE(router.consume(stray, /*now=*/base));
  EXPECT_FALSE(router.retry_due(base + 2 * base - 1));
  EXPECT_TRUE(router.retry_due(base + 2 * base));

  // Third: quadruples.
  EXPECT_FALSE(router.consume(stray, /*now=*/3 * base));
  EXPECT_FALSE(router.retry_due(3 * base + 4 * base - 1));
  EXPECT_TRUE(router.retry_due(3 * base + 4 * base));
}

TEST(RtrLifecycle, RetryBackoffIsCapped) {
  RouterSession router;
  const Pdu stray = make_ipv4_prefix(true, vrp("10.0.0.0/8", 8, 1));
  const TimeSec base = router.retry_interval();
  for (int i = 0; i < 12; ++i) {
    EXPECT_FALSE(router.consume(stray, /*now=*/0));
    (void)router.take_error_report();
  }
  // The doubling stops at 64× the retry interval.
  EXPECT_FALSE(router.retry_due(64 * base - 1));
  EXPECT_TRUE(router.retry_due(64 * base));
}

TEST(RtrLifecycle, SuccessfulSyncResetsBackoff) {
  Cache cache(1);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  const Pdu stray = make_ipv4_prefix(true, vrp("10.0.0.0/8", 8, 1));
  const TimeSec base = router.retry_interval();

  // Two failures push the window to 2× the retry interval.
  EXPECT_FALSE(router.consume(stray, /*now=*/0));
  EXPECT_FALSE(router.consume(stray, /*now=*/0));
  EXPECT_FALSE(router.retry_due(2 * base - 1));

  // A successful handshake clears the failure streak...
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response), /*now=*/2 * base));
  EXPECT_EQ(router.state(), RouterSession::State::kSynchronized);

  // ...so the next failure backs off from the base interval again.
  EXPECT_FALSE(router.consume(stray, /*now=*/3 * base));
  EXPECT_TRUE(router.retry_due(3 * base + base));
  EXPECT_FALSE(router.retry_due(3 * base + base - 1));
}

TEST(RtrLifecycle, ExpiredDataFallsBackToNoValidation) {
  Cache cache(1);
  cache.set_timers(/*refresh=*/3600, /*retry=*/600, /*expire=*/7200);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response), /*now=*/1000));

  // Usable right up to the expire boundary...
  EXPECT_FALSE(router.data_expired(1000 + 7200));
  ASSERT_TRUE(router.effective_vrps(1000 + 7200).has_value());
  EXPECT_EQ(router.effective_vrps(1000)->validate(pfx("10.1.0.0/16"), 65001),
            RouteValidity::kValid);

  // ...and gone one second past it: the router runs no validation
  // rather than acting on arbitrarily stale data (§6).
  EXPECT_TRUE(router.data_expired(1000 + 7201));
  EXPECT_FALSE(router.effective_vrps(1000 + 7201).has_value());
}

TEST(RtrLifecycle, EndOfDataTimersAdopted) {
  Cache cache(1);
  cache.set_timers(/*refresh=*/100, /*retry=*/250, /*expire=*/900);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response), /*now=*/0));
  EXPECT_EQ(router.retry_interval(), 250u);
  EXPECT_EQ(router.expire_interval(), 900u);

  // Expiry follows the adopted timer, not the §5.8 default.
  EXPECT_TRUE(router.effective_vrps(900).has_value());
  EXPECT_FALSE(router.effective_vrps(901).has_value());

  // So does the reconnect backoff.
  router.connection_lost(/*now=*/400);
  EXPECT_FALSE(router.retry_due(400 + 249));
  EXPECT_TRUE(router.retry_due(400 + 250));
}

TEST(RtrLifecycle, RecoveryAfterTeardownRestoresExactView) {
  Cache cache(5);
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001)}));
  RouterSession router;
  std::vector<Pdu> response;
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response), /*now=*/0));
  const std::size_t before = router.vrp_count();

  // A corrupt stream tears the session down mid-series.
  auto poisoned =
      make_ipv4_prefix(true, vrp("10.9.0.0/16", 16, 65009)).serialize();
  poisoned[9] = 40;
  EXPECT_FALSE(router.consume_stream(poisoned, /*now=*/10));
  EXPECT_EQ(router.state(), RouterSession::State::kDown);
  const auto report = router.take_error_report();
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->error_code, ErrorCode::kCorruptData);
  // The poisoned announce never landed; the synced data stays as-is.
  EXPECT_EQ(router.vrp_count(), before);
  ASSERT_TRUE(router.effective_vrps(10).has_value());

  // The cache moves on while the router is down.
  cache.publish(set_of({vrp("10.1.0.0/16", 16, 65001),
                        vrp("10.2.0.0/16", 16, 65002)}));

  // After the backoff window the handshake restarts from scratch and
  // reconverges on the cache's current snapshot exactly.
  const TimeSec retry_at = 10 + router.retry_interval();
  EXPECT_FALSE(router.retry_due(retry_at - 1));
  ASSERT_TRUE(router.retry_due(retry_at));
  EXPECT_EQ(router.next_query().type, PduType::kResetQuery);
  response.clear();
  cache.handle(router.next_query(), response);
  ASSERT_TRUE(router.consume_stream(to_stream(response), retry_at));
  EXPECT_EQ(router.state(), RouterSession::State::kSynchronized);
  EXPECT_EQ(router.serial(), cache.serial());
  EXPECT_EQ(router.vrp_count(), cache.current().size());
  EXPECT_EQ(router.vrps().validate(pfx("10.2.0.0/16"), 65002),
            RouteValidity::kValid);
}

}  // namespace
