// Checkpoint subsystem tests (src/persist + engine resume):
//
//  - wire primitives: round trips, known CRC32/FNV vectors, reader
//    bounds latching,
//  - container: encode→decode→re-encode is byte-identical (canonical
//    encoding), every strict prefix is rejected (truncation at every
//    byte, which covers every section boundary), every single-byte
//    corruption is rejected (header, table and payload CRCs leave no
//    unprotected byte), per-section CRC diagnostics name the section,
//  - crash-safe files: write/rotate/load, fallback to the rotated
//    predecessor, corrupted-everything → logged nullopt,
//  - engine resume: a runner restored from the round-k checkpoint
//    finishes the series bit-identically to an uninterrupted run at
//    1/2/4/8 threads (scores, observations, and published CSV bytes),
//    and every refusal path (digest / tag / mode mismatch, corrupt
//    file) degrades to a logged cold start.
//
// The container and corruption cases run under ASan+UBSan in
// scripts/tier1.sh — the loader must stay clean on attacker-grade input.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental_runner.h"
#include "core/publish.h"
#include "incremental/score_cache.h"
#include "persist/checkpoint.h"
#include "persist/checkpoint_io.h"
#include "persist/wire.h"
#include "round_fixture.h"
#include "util/logging.h"

namespace {

using namespace rovista;
namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rovista-ckpt-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
  }
  ~TempDir() { fs::remove_all(path); }
  static int counter;
};
int TempDir::counter = 0;

// Capture everything the logging sink emits while `fn` runs.
template <typename Fn>
std::string capture_log(Fn&& fn) {
  std::FILE* sink = std::tmpfile();
  EXPECT_NE(sink, nullptr);
  const util::LogLevel before = util::log_level();
  util::set_log_level(util::LogLevel::kWarn);
  util::set_log_sink(sink);
  fn();
  util::set_log_sink(nullptr);
  util::set_log_level(before);
  std::string out;
  std::rewind(sink);
  char buf[512];
  while (std::fgets(buf, sizeof buf, sink) != nullptr) out += buf;
  std::fclose(sink);
  return out;
}

std::vector<std::uint8_t> read_bytes(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::vector<std::uint8_t> out;
  char c;
  while (f.get(c)) out.push_back(static_cast<std::uint8_t>(c));
  return out;
}

void write_bytes(const fs::path& p, std::span<const std::uint8_t> bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

// ---------- wire primitives ----------

TEST(Wire, WriterReaderRoundTrip) {
  persist::ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-1234567890123LL);
  w.f64(3.141592653589793);
  w.f64(-0.0);

  persist::ByteReader r(w.data());
  std::uint8_t a = 0;
  std::uint16_t b = 0;
  std::uint32_t c = 0;
  std::uint64_t d = 0;
  std::int64_t e = 0;
  double f = 0.0;
  double g = 1.0;
  EXPECT_TRUE(r.u8(a));
  EXPECT_TRUE(r.u16(b));
  EXPECT_TRUE(r.u32(c));
  EXPECT_TRUE(r.u64(d));
  EXPECT_TRUE(r.i64(e));
  EXPECT_TRUE(r.f64(f));
  EXPECT_TRUE(r.f64(g));
  EXPECT_EQ(a, 0xAB);
  EXPECT_EQ(b, 0xBEEF);
  EXPECT_EQ(c, 0xDEADBEEFu);
  EXPECT_EQ(d, 0x0123456789ABCDEFull);
  EXPECT_EQ(e, -1234567890123LL);
  EXPECT_EQ(f, 3.141592653589793);
  EXPECT_EQ(std::signbit(g), true);  // -0.0 round-trips bit-exactly
  EXPECT_TRUE(r.exhausted_ok());
}

TEST(Wire, NanPayloadRoundTripsBitExactly) {
  double weird;
  std::uint64_t bits = 0x7FF80000DEADBEEFull;  // NaN with a payload
  std::memcpy(&weird, &bits, sizeof weird);
  persist::ByteWriter w;
  w.f64(weird);
  persist::ByteReader r(w.data());
  double out = 0.0;
  ASSERT_TRUE(r.f64(out));
  std::uint64_t out_bits = 0;
  std::memcpy(&out_bits, &out, sizeof out);
  EXPECT_EQ(out_bits, bits);
}

TEST(Wire, LittleEndianOnDisk) {
  persist::ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[1], 0x03);
  EXPECT_EQ(w.data()[2], 0x02);
  EXPECT_EQ(w.data()[3], 0x01);
}

TEST(Wire, ReaderLatchesOnOverread) {
  persist::ByteWriter w;
  w.u16(7);
  persist::ByteReader r(w.data());
  std::uint32_t v = 0;
  EXPECT_FALSE(r.u32(v));  // 4 > 2 remaining
  EXPECT_TRUE(r.failed());
  std::uint8_t b = 0;
  EXPECT_FALSE(r.u8(b));  // latched: even a fitting read now fails
}

TEST(Wire, Crc32KnownVector) {
  // The standard CRC-32 check value.
  const char* s = "123456789";
  EXPECT_EQ(persist::crc32(std::span(
                reinterpret_cast<const std::uint8_t*>(s), 9)),
            0xCBF43926u);
}

TEST(Wire, Fnv1a64KnownVectors) {
  EXPECT_EQ(persist::fnv1a64({}), 0xcbf29ce484222325ull);
  const char* a = "a";
  EXPECT_EQ(persist::fnv1a64(std::span(
                reinterpret_cast<const std::uint8_t*>(a), 1)),
            0xaf63dc4c8601ec8cull);
}

// ---------- container encode/decode ----------

persist::CheckpointState sample_state() {
  persist::CheckpointState s;
  s.config_digest = 0x1122334455667788ull;
  s.user_tag = 0x99AABBCCDDEEFF00ull;
  s.incremental = true;
  s.have_round = true;

  persist::RoundRecord r1;
  r1.date = util::Date::from_ymd(2022, 3, 1);
  r1.scores = {{65001u, 100.0}, {65002u, 37.5}};
  persist::RoundRecord r2;
  r2.date = util::Date::from_ymd(2022, 3, 21);
  r2.scores = {{65001u, 50.0}};
  s.rounds = {r1, r2};

  scan::Vvp v;
  v.address = net::Ipv4Address(0x0A000001);
  v.asn = 65001;
  v.est_background_rate = 2.5;
  s.vvps = {v};

  scan::Tnode t;
  t.address = net::Ipv4Address(0xC0A80001);
  t.port = 80;
  t.prefix = net::Ipv4Prefix(net::Ipv4Address(0xC0A80000), 24);
  t.origin = 65003;
  s.tnodes = {t, t};

  s.cache_vvp_addrs = {0x0A000001};
  s.cache_tnode_addrs = {0xC0A80001, 0xC0A80002};
  persist::CacheEntryState e;
  e.fingerprint = 0xF00DF00DF00DF00Dull;
  e.observation.vvp_as = 65001;
  e.observation.vvp = net::Ipv4Address(0x0A000001);
  e.observation.tnode = net::Ipv4Address(0xC0A80001);
  e.observation.verdict = core::FilteringVerdict::kOutboundFiltering;
  s.cache_entries = {e, std::nullopt};

  rpki::Vrp vrp;
  vrp.prefix = net::Ipv4Prefix(net::Ipv4Address(0xC0A80000), 24);
  vrp.max_length = 24;
  vrp.asn = 65003;
  s.vrps = {vrp};
  return s;
}

void expect_states_equal(const persist::CheckpointState& a,
                         const persist::CheckpointState& b) {
  EXPECT_EQ(a.config_digest, b.config_digest);
  EXPECT_EQ(a.user_tag, b.user_tag);
  EXPECT_EQ(a.incremental, b.incremental);
  EXPECT_EQ(a.have_round, b.have_round);
  EXPECT_EQ(a.rounds, b.rounds);
  ASSERT_EQ(a.vvps.size(), b.vvps.size());
  for (std::size_t i = 0; i < a.vvps.size(); ++i) {
    EXPECT_EQ(a.vvps[i].address.value(), b.vvps[i].address.value());
    EXPECT_EQ(a.vvps[i].asn, b.vvps[i].asn);
    EXPECT_EQ(a.vvps[i].est_background_rate, b.vvps[i].est_background_rate);
  }
  ASSERT_EQ(a.tnodes.size(), b.tnodes.size());
  for (std::size_t i = 0; i < a.tnodes.size(); ++i) {
    EXPECT_EQ(a.tnodes[i].address.value(), b.tnodes[i].address.value());
    EXPECT_EQ(a.tnodes[i].port, b.tnodes[i].port);
    EXPECT_EQ(a.tnodes[i].prefix, b.tnodes[i].prefix);
    EXPECT_EQ(a.tnodes[i].origin, b.tnodes[i].origin);
  }
  EXPECT_EQ(a.cache_vvp_addrs, b.cache_vvp_addrs);
  EXPECT_EQ(a.cache_tnode_addrs, b.cache_tnode_addrs);
  ASSERT_EQ(a.cache_entries.size(), b.cache_entries.size());
  for (std::size_t i = 0; i < a.cache_entries.size(); ++i) {
    ASSERT_EQ(a.cache_entries[i].has_value(), b.cache_entries[i].has_value());
    if (!a.cache_entries[i].has_value()) continue;
    EXPECT_EQ(a.cache_entries[i]->fingerprint,
              b.cache_entries[i]->fingerprint);
    EXPECT_EQ(a.cache_entries[i]->observation.verdict,
              b.cache_entries[i]->observation.verdict);
  }
  EXPECT_EQ(a.vrps, b.vrps);
}

TEST(Checkpoint, EncodeDecodeReencodeIsByteIdentical) {
  const persist::CheckpointState s = sample_state();
  const auto bytes = persist::encode_checkpoint(s);
  const auto decoded = persist::decode_checkpoint(bytes);
  ASSERT_TRUE(decoded.has_value());
  expect_states_equal(s, *decoded);
  EXPECT_EQ(persist::encode_checkpoint(*decoded), bytes);  // canonical
}

TEST(Checkpoint, EmptyStateRoundTrips) {
  const persist::CheckpointState s;  // pre-first-round checkpoint
  const auto bytes = persist::encode_checkpoint(s);
  const auto decoded = persist::decode_checkpoint(bytes);
  ASSERT_TRUE(decoded.has_value());
  expect_states_equal(s, *decoded);
  EXPECT_EQ(persist::encode_checkpoint(*decoded), bytes);
}

TEST(Checkpoint, RejectsBadMagicVersionAndTrailingBytes) {
  const auto bytes = persist::encode_checkpoint(sample_state());
  std::string error;

  auto bad = bytes;
  bad[0] = 'X';
  EXPECT_FALSE(persist::decode_checkpoint(bad, &error).has_value());
  EXPECT_NE(error.find("magic"), std::string::npos) << error;

  bad = bytes;
  bad[4] = 0xFF;  // format version
  EXPECT_FALSE(persist::decode_checkpoint(bad, &error).has_value());
  EXPECT_NE(error.find("version"), std::string::npos) << error;

  bad = bytes;
  bad.push_back(0);
  EXPECT_FALSE(persist::decode_checkpoint(bad, &error).has_value());
  EXPECT_NE(error.find("trailing"), std::string::npos) << error;
}

TEST(Checkpoint, EveryTruncationIsRejected) {
  // Strict prefixes cover truncation at every section boundary and
  // everywhere in between; none may decode, none may crash.
  const auto bytes = persist::encode_checkpoint(sample_state());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const auto prefix = std::span(bytes).first(len);
    EXPECT_FALSE(persist::decode_checkpoint(prefix).has_value())
        << "prefix of length " << len << " decoded";
  }
}

TEST(Checkpoint, EverySingleByteCorruptionIsRejected) {
  // Header fields, the section table, and every payload byte sit under
  // some checksum (or structural check); a flip anywhere must fail.
  const auto bytes = persist::encode_checkpoint(sample_state());
  auto corrupt = bytes;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    corrupt[i] = bytes[i] ^ 0x5A;
    EXPECT_FALSE(persist::decode_checkpoint(corrupt).has_value())
        << "flip at byte " << i << " decoded";
    corrupt[i] = bytes[i];
  }
}

TEST(Checkpoint, DeterministicBitFlipFuzz) {
  // A cheap deterministic fuzzer: LCG-driven single-bit flips. Nothing
  // may crash (this binary runs under ASan+UBSan in tier-1) and nothing
  // may decode.
  const auto bytes = persist::encode_checkpoint(sample_state());
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  auto corrupt = bytes;
  for (int iter = 0; iter < 2000; ++iter) {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    const std::size_t byte = (rng >> 16) % bytes.size();
    const int bit = static_cast<int>((rng >> 8) & 7);
    corrupt[byte] = bytes[byte] ^ static_cast<std::uint8_t>(1u << bit);
    EXPECT_FALSE(persist::decode_checkpoint(corrupt).has_value())
        << "bit " << bit << " of byte " << byte << " decoded";
    corrupt[byte] = bytes[byte];
  }
}

TEST(Checkpoint, PayloadCorruptionNamesTheSection) {
  const auto bytes = persist::encode_checkpoint(sample_state());
  const auto info = persist::inspect_checkpoint(bytes);
  ASSERT_TRUE(info.has_value());
  ASSERT_EQ(info->sections.size(), 5u);
  for (const auto& section : info->sections) {
    if (section.length == 0) continue;
    auto corrupt = bytes;
    const std::size_t target = section.offset + section.length / 2;
    corrupt[target] ^= 0xFF;
    std::string error;
    EXPECT_FALSE(persist::decode_checkpoint(corrupt, &error).has_value());
    EXPECT_NE(error.find(persist::section_name(section.id)),
              std::string::npos)
        << "corrupting " << persist::section_name(section.id)
        << " reported: " << error;
  }
}

TEST(Checkpoint, InspectReportsPerSectionIntegrity) {
  const auto bytes = persist::encode_checkpoint(sample_state());
  const auto clean = persist::inspect_checkpoint(bytes);
  ASSERT_TRUE(clean.has_value());
  EXPECT_TRUE(clean->magic_ok);
  EXPECT_TRUE(clean->version_supported);
  EXPECT_TRUE(clean->table_crc_ok);
  EXPECT_TRUE(clean->decodes);
  ASSERT_EQ(clean->sections.size(), 5u);
  for (const auto& s : clean->sections) {
    EXPECT_TRUE(s.in_bounds);
    EXPECT_TRUE(s.crc_ok) << persist::section_name(s.id);
  }

  // Corrupt one payload byte: exactly that section must flag, and the
  // overall verdict must flip — but inspection still walks everything.
  auto corrupt = bytes;
  const auto& target = clean->sections[2];  // DISCOVERY
  corrupt[target.offset] ^= 0xFF;
  const auto dirty = persist::inspect_checkpoint(corrupt);
  ASSERT_TRUE(dirty.has_value());
  EXPECT_TRUE(dirty->table_crc_ok);
  EXPECT_FALSE(dirty->decodes);
  for (const auto& s : dirty->sections) {
    EXPECT_EQ(s.crc_ok, s.id != persist::kSectionDiscovery)
        << persist::section_name(s.id);
  }

  // Too short for a header → nullopt, not UB.
  EXPECT_FALSE(
      persist::inspect_checkpoint(std::span(bytes).first(8)).has_value());
}

// ---------- crash-safe files ----------

TEST(CheckpointIo, WriteLoadRotateAndFallBack) {
  TempDir dir;
  const auto paths = persist::CheckpointPaths::in(dir.path.string());

  persist::CheckpointState first = sample_state();
  first.user_tag = 1;
  ASSERT_TRUE(persist::write_checkpoint_file(dir.path.string(), first));
  EXPECT_TRUE(fs::exists(paths.current));
  EXPECT_FALSE(fs::exists(paths.temp));

  persist::CheckpointState second = sample_state();
  second.user_tag = 2;
  ASSERT_TRUE(persist::write_checkpoint_file(dir.path.string(), second));
  EXPECT_TRUE(fs::exists(paths.previous));  // rotated generation

  auto loaded = persist::load_checkpoint_file(dir.path.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->user_tag, 2u);

  // Corrupt the current file: the loader must log the rejection and
  // fall back to the rotated predecessor.
  auto bytes = read_bytes(paths.current);
  bytes[bytes.size() / 2] ^= 0xFF;
  write_bytes(paths.current, bytes);
  std::string log;
  std::optional<persist::CheckpointState> fallback;
  log = capture_log([&] {
    fallback = persist::load_checkpoint_file(dir.path.string());
  });
  ASSERT_TRUE(fallback.has_value());
  EXPECT_EQ(fallback->user_tag, 1u);
  EXPECT_NE(log.find("checkpoint"), std::string::npos) << log;

  // Corrupt the predecessor too: nothing usable left.
  auto prev = read_bytes(paths.previous);
  prev.resize(prev.size() / 2);  // truncate
  write_bytes(paths.previous, prev);
  log = capture_log([&] {
    fallback = persist::load_checkpoint_file(dir.path.string());
  });
  EXPECT_FALSE(fallback.has_value());
}

TEST(CheckpointIo, MissingDirectoryIsColdStart) {
  const std::string log = capture_log([] {
    EXPECT_FALSE(
        persist::load_checkpoint_file("/nonexistent/rovista-ckpt-xyz")
            .has_value());
  });
}

// ---------- engine resume ----------

std::vector<util::Date> series_dates(const scenario::ScenarioParams& params) {
  // Same spread as test_incremental_round: real timeline churn between
  // rounds, so resume must replay actual change, not a no-op.
  return {params.start + 150, params.start + 171, params.start + 215};
}

core::IncrementalConfig engine_config(int num_threads) {
  core::IncrementalConfig config;
  config.params = testfx::round_params();
  config.rovista = testfx::round_config();
  config.rovista.num_threads = num_threads;
  config.incremental = true;
  return config;
}

void expect_rounds_bit_identical(const core::MeasurementRound& a,
                                 const core::MeasurementRound& b,
                                 const char* label) {
  EXPECT_EQ(a.experiments_run, b.experiments_run) << label;
  EXPECT_EQ(a.inconclusive, b.inconclusive) << label;
  ASSERT_EQ(a.observations.size(), b.observations.size()) << label;
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    ASSERT_EQ(a.observations[i].vvp_as, b.observations[i].vvp_as) << label;
    ASSERT_EQ(a.observations[i].vvp.value(), b.observations[i].vvp.value())
        << label;
    ASSERT_EQ(a.observations[i].tnode.value(),
              b.observations[i].tnode.value())
        << label;
    ASSERT_EQ(a.observations[i].verdict, b.observations[i].verdict) << label;
  }
  ASSERT_EQ(a.scores.size(), b.scores.size()) << label;
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    ASSERT_EQ(a.scores[i].asn, b.scores[i].asn) << label;
    ASSERT_EQ(std::memcmp(&a.scores[i].score, &b.scores[i].score,
                          sizeof(double)),
              0)
        << label;
  }
}

std::map<std::string, std::string> read_dir(const fs::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::ifstream f(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << f.rdbuf();
    files[entry.path().filename().string()] = buf.str();
  }
  return files;
}

class CheckpointResume : public ::testing::Test {
 protected:
  // One uninterrupted 3-round series and one 2-round checkpoint state,
  // shared by the per-thread-count resume cases.
  static void SetUpTestSuite() {
    uninterrupted_ = new core::IncrementalLongitudinalRunner(engine_config(0));
    final_rounds_ = new std::vector<core::RoundReport>();
    for (const util::Date date : series_dates(uninterrupted_->config().params)) {
      final_rounds_->push_back(uninterrupted_->run_round(date));
    }

    core::IncrementalLongitudinalRunner partial(engine_config(0));
    const auto dates = series_dates(partial.config().params);
    partial.run_round(dates[0]);
    partial.run_round(dates[1]);
    after_two_ = new persist::CheckpointState(partial.checkpoint_state());
  }

  static void TearDownTestSuite() {
    delete after_two_;
    delete final_rounds_;
    delete uninterrupted_;
    after_two_ = nullptr;
    final_rounds_ = nullptr;
    uninterrupted_ = nullptr;
  }

  static void expect_resume_matches(int num_threads) {
    core::IncrementalLongitudinalRunner resumed(engine_config(num_threads));
    ASSERT_TRUE(resumed.restore(*after_two_));
    EXPECT_EQ(resumed.completed_rounds(), 2u);

    const auto dates = series_dates(resumed.config().params);
    const core::RoundReport last = resumed.run_round(dates[2]);
    const std::string label =
        "resumed final round @ " + std::to_string(num_threads) + " threads";
    expect_rounds_bit_identical((*final_rounds_)[2].round, last.round,
                                label.c_str());

    // The store (rebuilt from the checkpoint + the resumed round) must
    // publish byte-identical CSVs.
    TempDir full_dir;
    TempDir resumed_dir;
    ASSERT_TRUE(core::publish_scores(uninterrupted_->store(),
                                     full_dir.path.string())
                    .has_value());
    ASSERT_TRUE(
        core::publish_scores(resumed.store(), resumed_dir.path.string())
            .has_value());
    EXPECT_EQ(read_dir(full_dir.path), read_dir(resumed_dir.path)) << label;
  }

  static core::IncrementalLongitudinalRunner* uninterrupted_;
  static std::vector<core::RoundReport>* final_rounds_;
  static persist::CheckpointState* after_two_;
};

core::IncrementalLongitudinalRunner* CheckpointResume::uninterrupted_ =
    nullptr;
std::vector<core::RoundReport>* CheckpointResume::final_rounds_ = nullptr;
persist::CheckpointState* CheckpointResume::after_two_ = nullptr;

TEST_F(CheckpointResume, StateSurvivesEncodeDecode) {
  const auto bytes = persist::encode_checkpoint(*after_two_);
  const auto decoded = persist::decode_checkpoint(bytes);
  ASSERT_TRUE(decoded.has_value());
  expect_states_equal(*after_two_, *decoded);
  EXPECT_EQ(persist::encode_checkpoint(*decoded), bytes);
  EXPECT_FALSE(after_two_->rounds.empty());
  EXPECT_FALSE(after_two_->vvps.empty());
  EXPECT_FALSE(after_two_->vrps.empty());
}

TEST_F(CheckpointResume, SerialResumeMatchesUninterrupted) {
  expect_resume_matches(1);
}

TEST_F(CheckpointResume, TwoThreadResumeMatchesUninterrupted) {
  expect_resume_matches(2);
}

TEST_F(CheckpointResume, FourThreadResumeMatchesUninterrupted) {
  expect_resume_matches(4);
}

TEST_F(CheckpointResume, EightThreadResumeMatchesUninterrupted) {
  expect_resume_matches(8);
}

TEST_F(CheckpointResume, FileRoundTripResumesIdentically) {
  // Through the actual file layer, not just in-memory state.
  TempDir dir;
  ASSERT_TRUE(persist::write_checkpoint_file(dir.path.string(), *after_two_));

  core::IncrementalConfig config = engine_config(2);
  config.checkpoint_dir = dir.path.string();
  core::IncrementalLongitudinalRunner resumed(config);
  ASSERT_TRUE(resumed.resume_from_checkpoint());
  EXPECT_EQ(resumed.completed_rounds(), 2u);

  const auto dates = series_dates(resumed.config().params);
  const core::RoundReport last = resumed.run_round(dates[2]);
  expect_rounds_bit_identical((*final_rounds_)[2].round, last.round,
                              "file round trip");
}

TEST_F(CheckpointResume, DigestMismatchIsLoggedColdStart) {
  core::IncrementalConfig other = engine_config(0);
  other.params.seed = 999;  // different world
  core::IncrementalLongitudinalRunner runner(other);
  std::string log = capture_log([&] {
    EXPECT_FALSE(runner.restore(*after_two_));
  });
  EXPECT_EQ(runner.completed_rounds(), 0u);  // untouched
  EXPECT_NE(log.find("digest mismatch"), std::string::npos) << log;
}

TEST_F(CheckpointResume, UserTagMismatchIsLoggedColdStart) {
  core::IncrementalConfig tagged = engine_config(0);
  tagged.checkpoint_user_tag = 0xDEAD;
  core::IncrementalLongitudinalRunner runner(tagged);
  std::string log = capture_log([&] {
    EXPECT_FALSE(runner.restore(*after_two_));
  });
  EXPECT_NE(log.find("tag mismatch"), std::string::npos) << log;
}

TEST_F(CheckpointResume, ModeMismatchIsLoggedColdStart) {
  core::IncrementalConfig full = engine_config(0);
  full.incremental = false;
  core::IncrementalLongitudinalRunner runner(full);
  std::string log = capture_log([&] {
    EXPECT_FALSE(runner.restore(*after_two_));
  });
  EXPECT_NE(log.find("mismatch"), std::string::npos) << log;
}

TEST_F(CheckpointResume, CorruptCheckpointFilesAreLoggedColdStart) {
  TempDir dir;
  ASSERT_TRUE(persist::write_checkpoint_file(dir.path.string(), *after_two_));
  const auto paths = persist::CheckpointPaths::in(dir.path.string());
  auto bytes = read_bytes(paths.current);
  bytes[bytes.size() / 3] ^= 0xFF;
  write_bytes(paths.current, bytes);

  core::IncrementalConfig config = engine_config(0);
  config.checkpoint_dir = dir.path.string();
  core::IncrementalLongitudinalRunner runner(config);
  std::string log = capture_log([&] {
    EXPECT_FALSE(runner.resume_from_checkpoint());
  });
  EXPECT_EQ(runner.completed_rounds(), 0u);
  EXPECT_NE(log.find("checkpoint"), std::string::npos) << log;
  // The runner is still a perfectly good cold start.
  const auto dates = series_dates(runner.config().params);
  const core::RoundReport first = runner.run_round(dates[0]);
  expect_rounds_bit_identical((*final_rounds_)[0].round, first.round,
                              "cold start after corrupt checkpoint");
  // The destructor writes an exit checkpoint into config.checkpoint_dir;
  // let it — TempDir cleans up.
}

TEST_F(CheckpointResume, PeriodicCheckpointsAreWritten) {
  TempDir dir;
  core::IncrementalConfig config = engine_config(0);
  config.checkpoint_dir = dir.path.string();
  config.checkpoint_every = 1;
  const auto paths = persist::CheckpointPaths::in(dir.path.string());
  {
    core::IncrementalLongitudinalRunner runner(config);
    const auto dates = series_dates(runner.config().params);
    runner.run_round(dates[0]);
    ASSERT_TRUE(fs::exists(paths.current));
    const auto one = persist::load_checkpoint_file(dir.path.string());
    ASSERT_TRUE(one.has_value());
    EXPECT_EQ(one->rounds.size(), 1u);
    runner.run_round(dates[1]);
  }
  const auto two = persist::load_checkpoint_file(dir.path.string());
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->rounds.size(), 2u);
  EXPECT_TRUE(fs::exists(paths.previous));
}

TEST(ScoreCacheRestore, ShapeMismatchClearsAndRefuses) {
  incremental::ScoreCache cache;
  EXPECT_FALSE(cache.restore({1, 2}, {3}, {}));  // 2x1 needs 2 entries
  EXPECT_EQ(cache.vvp_count(), 0u);
  EXPECT_TRUE(cache.restore({1, 2}, {3},
                            std::vector<std::optional<incremental::CacheEntry>>(
                                2, std::nullopt)));
  EXPECT_EQ(cache.vvp_count(), 2u);
  EXPECT_EQ(cache.tnode_count(), 1u);
}

}  // namespace
