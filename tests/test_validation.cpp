// Tests for src/validation: ground-truth cross-validation, single-prefix
// comparison, crowdsourced lists, APNIC dashboard, traceroute x-val.
#include <gtest/gtest.h>

#include <memory>

#include "core/longitudinal.h"
#include "scenario/scenario.h"
#include "validation/apnic_dashboard.h"
#include "validation/cloudflare_list.h"
#include "validation/ground_truth.h"
#include "validation/single_prefix.h"
#include "validation/traceroute_xval.h"

namespace {

using namespace rovista::validation;
using rovista::core::AsScore;
using rovista::core::FilteringVerdict;
using rovista::core::LongitudinalStore;
using rovista::core::PairObservation;
using rovista::net::Ipv4Address;
using rovista::scenario::OperatorClaim;
using rovista::topology::Asn;
using rovista::util::Date;

AsScore score_of(Asn asn, double score) {
  AsScore s;
  s.asn = asn;
  s.score = score;
  return s;
}

LongitudinalStore store_with(std::vector<AsScore> scores) {
  LongitudinalStore store;
  store.record(Date::from_ymd(2023, 9, 12), scores);
  return store;
}

// ---------- ground truth / Table 2-3 ----------

TEST(CrossValidation, BucketsMatchPaperSemantics) {
  const LongitudinalStore store = store_with({
      score_of(1, 100.0),  // claims ROV, perfect
      score_of(2, 92.5),   // claims ROV, high (RETN-style)
      score_of(3, 0.0),    // claims ROV, zero (BIT-style stale)
      score_of(4, 0.0),    // claims non-ROV, zero
      score_of(5, 100.0),  // claims non-ROV, but protected (EBOX-style)
  });
  const std::vector<OperatorClaim> claims = {
      {1, true, false, "a"},  {2, true, false, "b"}, {3, true, true, "c"},
      {4, false, false, "d"}, {5, false, false, "e"}, {6, true, false, "f"},
  };
  const auto report = cross_validate(claims, store);
  EXPECT_EQ(report.rov_claims, 3u);
  EXPECT_EQ(report.rov_claims_perfect, 1u);
  EXPECT_EQ(report.rov_claims_high, 1u);
  EXPECT_EQ(report.rov_claims_zero_or_low, 1u);
  EXPECT_EQ(report.nonrov_claims, 2u);
  EXPECT_EQ(report.nonrov_claims_zero, 1u);
  ASSERT_EQ(report.comparisons.size(), 6u);
  EXPECT_EQ(report.comparisons[0].outcome, ClaimOutcome::kConsistentPerfect);
  EXPECT_EQ(report.comparisons[1].outcome, ClaimOutcome::kConsistentHigh);
  EXPECT_EQ(report.comparisons[2].outcome, ClaimOutcome::kDiscrepantLow);
  EXPECT_EQ(report.comparisons[3].outcome, ClaimOutcome::kConsistentNonRov);
  EXPECT_EQ(report.comparisons[4].outcome, ClaimOutcome::kDiscrepantNonRov);
  EXPECT_EQ(report.comparisons[5].outcome, ClaimOutcome::kUnmeasured);
}

// ---------- single-prefix comparison (Fig. 10) ----------

TEST(SinglePrefix, FalsePositiveAndNegativeCounting) {
  const LongitudinalStore unused = store_with({});
  (void)unused;
  const std::vector<SinglePrefixResult> labels = {
      {1, SinglePrefixLabel::kSafe},    // score 0 -> FP
      {2, SinglePrefixLabel::kSafe},    // score 100 -> fine
      {3, SinglePrefixLabel::kUnsafe},  // score 95 -> FN
      {4, SinglePrefixLabel::kUnsafe},  // score 0 -> fine
      {5, SinglePrefixLabel::kSafe},    // unmeasured -> skipped
  };
  const std::vector<AsScore> scores = {score_of(1, 0.0), score_of(2, 100.0),
                                       score_of(3, 95.0), score_of(4, 0.0)};
  const auto cmp = compare_with_rovista(labels, scores);
  EXPECT_EQ(cmp.compared, 4u);
  EXPECT_EQ(cmp.false_positives, 1u);
  EXPECT_EQ(cmp.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(cmp.fp_rate(), 0.25);
  EXPECT_DOUBLE_EQ(cmp.fn_rate(), 0.25);
}

// ---------- scenario-backed comparators ----------

class ValidationScenario : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    rovista::scenario::ScenarioParams params;
    params.seed = 77;
    params.topology.tier1_count = 5;
    params.topology.tier2_count = 16;
    params.topology.tier3_count = 40;
    params.topology.stub_count = 120;
    params.tnode_prefix_count = 5;
    params.measured_as_count = 30;
    params.hosts_per_measured_as = 3;
    scenario_ = new rovista::scenario::Scenario(std::move(params));
    scenario_->advance_to(scenario_->start() + 300);
  }
  static void TearDownTestSuite() {
    delete scenario_;
    scenario_ = nullptr;
  }
  static rovista::scenario::Scenario* scenario_;
};

rovista::scenario::Scenario* ValidationScenario::scenario_ = nullptr;

TEST_F(ValidationScenario, SinglePrefixMeasurementLabels) {
  auto& s = *scenario_;
  const auto& cs = s.cases();
  const Ipv4Address test_addr(
      cs.cloudflare_test_prefix.address().value() + 10);
  // Register the single test host so delivery can succeed.
  rovista::dataplane::HostConfig config;
  config.address = test_addr;
  config.open_ports = {80};
  config.seed = 1;
  s.plane().add_host(cs.cloudflare, config);

  const auto labels = single_prefix_measurement(
      s.plane(), s.measured_ases(), test_addr);
  EXPECT_EQ(labels.size(), s.measured_ases().size());
  int safe = 0;
  int unsafe_count = 0;
  for (const auto& l : labels) {
    (l.label == SinglePrefixLabel::kSafe ? safe : unsafe_count)++;
  }
  EXPECT_GT(safe, 0);
  EXPECT_GT(unsafe_count, 0);
}

TEST_F(ValidationScenario, CrowdListGenerationAndComparison) {
  auto& s = *scenario_;
  rovista::util::Rng rng(5);
  const auto list = generate_crowd_list(s, 25, 0.15, 0.2, rng);
  EXPECT_GE(list.size(), 20u);

  // The BIT-like stale claimant must be on the list, marked safe.
  const auto it = std::find_if(list.begin(), list.end(),
                               [&](const CrowdEntry& e) {
                                 return e.asn == s.cases().stale_claim_as;
                               });
  ASSERT_NE(it, list.end());
  EXPECT_EQ(it->label, CrowdLabel::kSafe);

  // Compare against a synthetic score store where the stale claimant
  // scores zero: its score must land in the "safe" bucket, reproducing
  // the paper's Fig. 11 disparity.
  LongitudinalStore store;
  std::vector<AsScore> scores;
  for (const auto& e : list) scores.push_back(score_of(e.asn, 0.0));
  store.record(Date::from_ymd(2023, 9, 12), scores);
  const auto cmp = compare_crowd_list(list, store);
  EXPECT_FALSE(cmp.safe_scores.empty());
  EXPECT_EQ(cmp.safe_scores.front(), 0.0);
}

TEST_F(ValidationScenario, ApnicDashboardMatchesPathReachability) {
  auto& s = *scenario_;
  const auto& cs = s.cases();
  const Ipv4Address content_host(
      cs.cloudflare_test_prefix.address().value() + 10);
  const auto dashboard = apnic_dashboard(
      s.plane(), s.measured_ases(), s.vvp_candidates(), content_host);
  EXPECT_FALSE(dashboard.empty());
  for (const auto& entry : dashboard) {
    EXPECT_GT(entry.clients, 0);
    const bool delivered =
        s.plane().compute_path(entry.asn, content_host).delivered;
    EXPECT_DOUBLE_EQ(entry.rov_filtering_pct, delivered ? 0.0 : 100.0);
  }
}

TEST_F(ValidationScenario, TracerouteXvalAgreesWithItself) {
  auto& s = *scenario_;
  // Build tNodes from the scenario's invalid prefixes.
  std::vector<rovista::scan::Tnode> tnodes;
  for (const auto& [prefix, origin] : s.tnode_prefixes()) {
    rovista::scan::Tnode t;
    t.address = Ipv4Address(prefix.address().value() + 10);
    t.port = 80;
    t.prefix = prefix;
    t.origin = origin;
    if (s.plane().host(t.address) != nullptr) tnodes.push_back(t);
  }
  ASSERT_FALSE(tnodes.empty());

  const auto probe_ases = s.measured_ases();
  const auto tuples = atlas_traceroutes(s.plane(), probe_ases, tnodes);
  EXPECT_EQ(tuples.size(), probe_ases.size() * tnodes.size());

  // Derive per-pair "verdicts" directly from reachability ground truth;
  // comparing must then match 100% — this validates the bookkeeping.
  std::vector<PairObservation> observations;
  for (const auto& t : tuples) {
    PairObservation o;
    o.vvp_as = t.asn;
    o.vvp = Ipv4Address(1);
    o.tnode = t.tnode;
    o.verdict = t.reachable ? FilteringVerdict::kNoFiltering
                            : FilteringVerdict::kOutboundFiltering;
    observations.push_back(o);
  }
  const auto result = compare_with_verdicts(tuples, observations);
  EXPECT_EQ(result.compared, tuples.size());
  EXPECT_DOUBLE_EQ(result.match_rate(), 1.0);
  EXPECT_EQ(result.mismatched, 0u);
}

TEST(TracerouteXval, MismatchCounting) {
  std::vector<ReachabilityTuple> tuples = {
      {10, Ipv4Address(1), true},
      {10, Ipv4Address(2), false},
  };
  std::vector<PairObservation> observations(2);
  observations[0].vvp_as = 10;
  observations[0].tnode = Ipv4Address(1);
  observations[0].verdict = FilteringVerdict::kOutboundFiltering;  // wrong
  observations[1].vvp_as = 10;
  observations[1].tnode = Ipv4Address(2);
  observations[1].verdict = FilteringVerdict::kOutboundFiltering;  // right
  const auto result = compare_with_verdicts(tuples, observations);
  EXPECT_EQ(result.compared, 2u);
  EXPECT_EQ(result.matched, 1u);
  EXPECT_EQ(result.mismatched, 1u);
}

}  // namespace
