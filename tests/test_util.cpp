// Tests for src/util: RNG, strings, CSV, dates, logging, thread pool.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "util/csv.h"
#include "util/date.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/thread_pool.h"

namespace {

using namespace rovista::util;

// ---------- Rng ----------

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SplitStreamsAreIndependentOfParentDrawCount) {
  Rng p1(7);
  Rng p2(7);
  Rng c1 = p1.split(42);
  Rng c2 = p2.split(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1(), c2());
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_u64(3, 7);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  double sum = 0.0;
  double sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(Rng, PoissonMeanLargeLambdaUsesNormalApprox) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(Rng, PoissonZeroLambda) {
  Rng rng(29);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ParetoLowerBound) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ExponentialMean) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(Rng, IndexBounds) {
  Rng rng(43);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(17), 17u);
}

// ---------- strings ----------

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Strings, SplitNoDelimiter) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, TrimBothEnds) {
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Strings, ParseU64Valid) {
  std::uint64_t v = 0;
  EXPECT_TRUE(parse_u64("0", v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("18446744073709551615", v));
  EXPECT_EQ(v, UINT64_MAX);
}

TEST(Strings, ParseU64Invalid) {
  std::uint64_t v = 0;
  EXPECT_FALSE(parse_u64("", v));
  EXPECT_FALSE(parse_u64("-1", v));
  EXPECT_FALSE(parse_u64("1a", v));
  EXPECT_FALSE(parse_u64("18446744073709551616", v));  // overflow
}

TEST(Strings, ParseDouble) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("3.25", v));
  EXPECT_DOUBLE_EQ(v, 3.25);
  EXPECT_FALSE(parse_double("3.25x", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(Strings, Format) {
  EXPECT_EQ(format("AS%u:%s", 42u, "x"), "AS42:x");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_TRUE(starts_with("hello", ""));
  EXPECT_FALSE(starts_with("he", "hello"));
}

// ---------- csv ----------

TEST(Csv, TextAndCsvRendering) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"33", "4"});
  EXPECT_EQ(t.row_count(), 2u);
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("a,bb\n"), std::string::npos);
  EXPECT_NE(csv.find("33,4\n"), std::string::npos);
  const std::string text = t.to_text();
  EXPECT_NE(text.find("33"), std::string::npos);
}

TEST(Csv, EscapesSpecialCharacters) {
  Table t({"x"});
  t.add_row({"va,l"});
  t.add_row({"q\"uote"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"va,l\""), std::string::npos);
  EXPECT_NE(csv.find("\"q\"\"uote\""), std::string::npos);
}

TEST(Csv, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
}

// ---------- date ----------

TEST(Date, EpochIsZero) {
  EXPECT_EQ(Date::from_ymd(1970, 1, 1).days_since_epoch(), 0);
}

TEST(Date, KnownDates) {
  EXPECT_EQ(Date::from_ymd(2021, 12, 24).days_since_epoch(), 18985);
  EXPECT_EQ(Date::from_ymd(2023, 9, 12).days_since_epoch(), 19612);
}

TEST(Date, RoundTripYmd) {
  for (int y : {1999, 2000, 2020, 2023, 2024}) {
    for (int m : {1, 2, 6, 12}) {
      for (int d : {1, 15, 28}) {
        const Date date = Date::from_ymd(y, m, d);
        int yy, mm, dd;
        date.to_ymd(yy, mm, dd);
        EXPECT_EQ(yy, y);
        EXPECT_EQ(mm, m);
        EXPECT_EQ(dd, d);
      }
    }
  }
}

TEST(Date, LeapYearHandling) {
  const Date feb29 = Date::from_ymd(2024, 2, 29);
  const Date mar1 = Date::from_ymd(2024, 3, 1);
  EXPECT_EQ(mar1 - feb29, 1);
}

TEST(Date, ToString) {
  EXPECT_EQ(Date::from_ymd(2022, 3, 14).to_string(), "2022-03-14");
}

TEST(Date, ParseValid) {
  Date d;
  ASSERT_TRUE(Date::parse("2022-05-27", d));
  EXPECT_EQ(d, Date::from_ymd(2022, 5, 27));
}

TEST(Date, ParseInvalid) {
  Date d;
  EXPECT_FALSE(Date::parse("2022-13-01", d));
  EXPECT_FALSE(Date::parse("2022-01-32", d));
  EXPECT_FALSE(Date::parse("20220101", d));
  EXPECT_FALSE(Date::parse("2022-01", d));
  EXPECT_FALSE(Date::parse("", d));
}

TEST(Date, Arithmetic) {
  const Date d = Date::from_ymd(2022, 1, 1);
  EXPECT_EQ((d + 31).to_string(), "2022-02-01");
  EXPECT_EQ((d - 1).to_string(), "2021-12-31");
  EXPECT_LT(d, d + 1);
}

// ---------- logging ----------

TEST(Logging, LevelFiltering) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log(LogLevel::kDebug, "should not crash, filtered");
  log(LogLevel::kError, "visible");
  set_log_level(before);
}

TEST(Logging, ConcurrentWritersNeverInterleaveMidLine) {
  // Smoke test for the logging mutex: many workers log distinctive
  // payloads at once; every emitted line must be exactly one complete
  // message (the pre-fix failure mode was torn lines on shared stderr).
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);
  set_log_sink(sink);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> writers;
  for (int w = 0; w < kThreads; ++w) {
    writers.emplace_back([w] {
      for (int i = 0; i < kPerThread; ++i) {
        log(LogLevel::kInfo, "worker-" + std::to_string(w) + "-msg-" +
                                 std::to_string(i) + "-end");
      }
    });
  }
  for (std::thread& t : writers) t.join();
  set_log_sink(nullptr);
  set_log_level(before);

  std::rewind(sink);
  char buffer[256];
  int lines = 0;
  while (std::fgets(buffer, sizeof(buffer), sink) != nullptr) {
    ++lines;
    const std::string line(buffer);
    EXPECT_EQ(line.rfind("[INFO] worker-", 0), 0u) << "torn line: " << line;
    EXPECT_NE(line.find("-end\n"), std::string::npos) << "torn line: " << line;
  }
  EXPECT_EQ(lines, kThreads * kPerThread);
  std::fclose(sink);
}

// ---------- thread pool ----------

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1000);
  // The pool is reusable after wait_idle.
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 1100);
}

TEST(ThreadPool, IdleWorkersStealFromLoadedQueue) {
  // Pin one worker in a gate task, then load that worker's own queue:
  // the gated worker can't touch it, so every counted task that runs
  // was stolen by a sibling. (A gate task's home queue is only a hint —
  // the gate itself may be stolen — so the test asks the gate which
  // worker it landed on instead of assuming worker 0.)
  ThreadPool pool(4);
  std::atomic<int> per_worker[4] = {};
  std::atomic<int> total{0};
  std::atomic<int> gate_worker{-1};
  std::atomic<bool> release{false};
  pool.submit_to(0, [&gate_worker, &release] {
    gate_worker.store(ThreadPool::worker_index(),
                      std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  });
  while (gate_worker.load(std::memory_order_acquire) < 0) {
    std::this_thread::yield();
  }
  const int gated = gate_worker.load(std::memory_order_relaxed);
  for (int i = 0; i < 2000; ++i) {
    pool.submit_to(gated, [&per_worker, &total] {
      const int w = ThreadPool::worker_index();
      ASSERT_GE(w, 0);
      ASSERT_LT(w, 4);
      per_worker[w].fetch_add(1, std::memory_order_relaxed);
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (total.load(std::memory_order_relaxed) < 2000 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  const int stolen = total.load(std::memory_order_relaxed);
  release.store(true, std::memory_order_release);
  pool.wait_idle();
  EXPECT_EQ(stolen, 2000) << "siblings never drained the loaded queue";
  EXPECT_EQ(per_worker[gated].load(), 0);
  int participating = 0;
  for (const auto& n : per_worker) {
    if (n.load() > 0) ++participating;
  }
  EXPECT_GE(participating, 1) << "no task was ever stolen";
}

TEST(ThreadPool, WorkerIndexIsMinusOneOutsidePool) {
  EXPECT_EQ(ThreadPool::worker_index(), -1);
}

TEST(ThreadPool, ClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<bool> ran{false};
  pool.submit([&ran] { ran.store(true); });
  pool.wait_idle();
  EXPECT_TRUE(ran.load());
}

}  // namespace
