// The incremental engine's strict contract (incremental/
// longitudinal_engine.h): every round's MeasurementRound — observations,
// scores, counters — is bit-identical to a from-scratch full recompute
// at that date, for any thread count, and the published CSV datasets
// match byte for byte. Also pins that the machinery actually engages:
// a repeated date reuses everything.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "core/incremental_runner.h"
#include "core/publish.h"
#include "persist/checkpoint.h"
#include "persist/wire.h"
#include "incremental/dirty_prefix.h"
#include "incremental/vrp_delta.h"
#include "round_fixture.h"
#include "snapshot/world_source.h"

namespace {

using namespace rovista;

std::vector<util::Date> round_dates(const scenario::ScenarioParams& params) {
  // Spread over the window so the timeline contributes ROV enablements
  // and announcement churn between rounds.
  return {params.start + 150, params.start + 171, params.start + 215};
}

core::IncrementalConfig engine_config(bool incremental, int num_threads) {
  core::IncrementalConfig config;
  config.params = testfx::round_params();
  const core::RovistaConfig rovista = testfx::round_config();
  config.rovista = rovista;
  config.rovista.num_threads = num_threads;
  config.incremental = incremental;
  return config;
}

void expect_bit_identical(const core::MeasurementRound& a,
                          const core::MeasurementRound& b,
                          const char* label) {
  EXPECT_EQ(a.experiments_run, b.experiments_run) << label;
  EXPECT_EQ(a.inconclusive, b.inconclusive) << label;
  ASSERT_EQ(a.observations.size(), b.observations.size()) << label;
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const core::PairObservation& x = a.observations[i];
    const core::PairObservation& y = b.observations[i];
    ASSERT_EQ(x.vvp_as, y.vvp_as) << label << " observation " << i;
    ASSERT_EQ(x.vvp.value(), y.vvp.value()) << label << " observation " << i;
    ASSERT_EQ(x.tnode.value(), y.tnode.value())
        << label << " observation " << i;
    ASSERT_EQ(x.verdict, y.verdict) << label << " observation " << i;
  }
  ASSERT_EQ(a.scores.size(), b.scores.size()) << label;
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    const core::AsScore& x = a.scores[i];
    const core::AsScore& y = b.scores[i];
    ASSERT_EQ(x.asn, y.asn) << label;
    ASSERT_EQ(std::memcmp(&x.score, &y.score, sizeof(double)), 0)
        << label << " AS" << x.asn << ": " << x.score << " vs " << y.score;
    ASSERT_EQ(x.vvp_count, y.vvp_count) << label;
    ASSERT_EQ(x.tnodes_consistent, y.tnodes_consistent) << label;
    ASSERT_EQ(x.tnodes_outbound, y.tnodes_outbound) << label;
    ASSERT_EQ(x.tnodes_inconsistent, y.tnodes_inconsistent) << label;
  }
}

std::map<std::string, std::string> read_dir(
    const std::filesystem::path& dir) {
  std::map<std::string, std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::ifstream f(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << f.rdbuf();
    files[entry.path().filename().string()] = buf.str();
  }
  return files;
}

class IncrementalRound : public ::testing::Test {
 protected:
  // One full-recompute baseline per date, shared across the per-thread-
  // count test cases.
  static void SetUpTestSuite() {
    baseline_ = new core::IncrementalLongitudinalRunner(
        engine_config(/*incremental=*/false, /*num_threads=*/0));
    baseline_rounds_ = new std::vector<core::RoundReport>();
    for (const util::Date date : round_dates(baseline_->config().params)) {
      baseline_rounds_->push_back(baseline_->run_round(date));
    }
  }

  static void TearDownTestSuite() {
    delete baseline_rounds_;
    delete baseline_;
    baseline_rounds_ = nullptr;
    baseline_ = nullptr;
  }

  static void expect_incremental_matches_baseline(int num_threads) {
    core::IncrementalLongitudinalRunner runner(
        engine_config(/*incremental=*/true, num_threads));
    const auto dates = round_dates(runner.config().params);
    for (std::size_t i = 0; i < dates.size(); ++i) {
      const core::RoundReport report = runner.run_round(dates[i]);
      const std::string label = dates[i].to_string() + " @ " +
                                std::to_string(num_threads) + " threads";
      expect_bit_identical((*baseline_rounds_)[i].round, report.round,
                           label.c_str());
    }
  }

  static core::IncrementalLongitudinalRunner* baseline_;
  static std::vector<core::RoundReport>* baseline_rounds_;
};

core::IncrementalLongitudinalRunner* IncrementalRound::baseline_ = nullptr;
std::vector<core::RoundReport>* IncrementalRound::baseline_rounds_ = nullptr;

TEST_F(IncrementalRound, FixtureIsNonTrivial) {
  ASSERT_EQ(baseline_rounds_->size(), 3u);
  for (const core::RoundReport& report : *baseline_rounds_) {
    EXPECT_GE(report.total_rows, 9u);
    EXPECT_GT(report.total_pairs, 0u);
    EXPECT_FALSE(report.round.scores.empty());
  }
  // The window between rounds must exercise real change, or the
  // incremental comparison would be vacuous.
  EXPECT_GT((*baseline_rounds_)[1].events + (*baseline_rounds_)[1].vrp_announced +
                (*baseline_rounds_)[2].events +
                (*baseline_rounds_)[2].vrp_announced,
            0u);
}

TEST_F(IncrementalRound, SerialMatchesFullRecompute) {
  expect_incremental_matches_baseline(1);
}

TEST_F(IncrementalRound, TwoThreadsMatchFullRecompute) {
  expect_incremental_matches_baseline(2);
}

TEST_F(IncrementalRound, FourThreadsMatchFullRecompute) {
  expect_incremental_matches_baseline(4);
}

TEST_F(IncrementalRound, EightThreadsMatchFullRecompute) {
  expect_incremental_matches_baseline(8);
}

TEST_F(IncrementalRound, PublishedDatasetsAreByteIdentical) {
  core::IncrementalLongitudinalRunner runner(
      engine_config(/*incremental=*/true, /*num_threads=*/4));
  for (const util::Date date : round_dates(runner.config().params)) {
    runner.run_round(date);
  }

  const auto tmp = std::filesystem::temp_directory_path();
  const auto full_dir = tmp / "rovista_incr_test_full";
  const auto incr_dir = tmp / "rovista_incr_test_incr";
  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(incr_dir);
  ASSERT_TRUE(core::publish_scores(baseline_->store(), full_dir.string())
                  .has_value());
  ASSERT_TRUE(
      core::publish_scores(runner.store(), incr_dir.string()).has_value());

  const auto full_files = read_dir(full_dir);
  const auto incr_files = read_dir(incr_dir);
  EXPECT_EQ(full_files, incr_files);  // same file names, same bytes

  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(incr_dir);
}

// ---------- SLURM scenarios ----------
//
// Same contract, harder world: a third of the ROV deployers carry RFC
// 8416 local exceptions, so every VRP install must run through the
// per-view dirty-set path of RoutingSystem::apply_vrp_delta instead of
// the (removed) invalidate-everything fallback.

core::IncrementalConfig slurm_engine_config(bool incremental,
                                            int num_threads) {
  core::IncrementalConfig config = engine_config(incremental, num_threads);
  config.params.slurm_fraction = 0.35;
  return config;
}

// The engine's install path, replicated so a test can drive the tracking
// world directly and observe cache/view state between rounds.
scenario::VrpInstaller delta_installer(std::size_t* delta_size) {
  return [delta_size](bgp::RoutingSystem& routing, const rpki::VrpSet& prev,
                      rpki::VrpSet next) {
    const incremental::VrpDelta delta =
        incremental::VrpDeltaComputer::diff(prev, next);
    const incremental::DirtyPrefixTracker tracker(delta);
    const std::vector<net::Ipv4Prefix> dirty =
        tracker.dirty_prefixes(prev, next, routing);
    if (delta_size != nullptr) {
      *delta_size = delta.announced.size() + delta.withdrawn.size();
    }
    routing.apply_vrp_delta(std::move(next), dirty, delta.announced,
                            delta.withdrawn);
  };
}

class SlurmIncrementalRound : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    baseline_ = new core::IncrementalLongitudinalRunner(
        slurm_engine_config(/*incremental=*/false, /*num_threads=*/0));
    baseline_rounds_ = new std::vector<core::RoundReport>();
    for (const util::Date date : round_dates(baseline_->config().params)) {
      baseline_rounds_->push_back(baseline_->run_round(date));
    }
  }

  static void TearDownTestSuite() {
    delete baseline_rounds_;
    delete baseline_;
    baseline_rounds_ = nullptr;
    baseline_ = nullptr;
  }

  static void expect_incremental_matches_baseline(int num_threads) {
    core::IncrementalLongitudinalRunner runner(
        slurm_engine_config(/*incremental=*/true, num_threads));
    const auto dates = round_dates(runner.config().params);
    for (std::size_t i = 0; i < dates.size(); ++i) {
      const core::RoundReport report = runner.run_round(dates[i]);
      const std::string label = "slurm " + dates[i].to_string() + " @ " +
                                std::to_string(num_threads) + " threads";
      expect_bit_identical((*baseline_rounds_)[i].round, report.round,
                           label.c_str());
    }
  }

  static core::IncrementalLongitudinalRunner* baseline_;
  static std::vector<core::RoundReport>* baseline_rounds_;
};

core::IncrementalLongitudinalRunner* SlurmIncrementalRound::baseline_ =
    nullptr;
std::vector<core::RoundReport>* SlurmIncrementalRound::baseline_rounds_ =
    nullptr;

TEST_F(SlurmIncrementalRound, FixtureHasSlurmBearingPolicies) {
  // The comparison would be vacuous if no AS actually carried exceptions
  // by the first measured date.
  const core::IncrementalConfig config = slurm_engine_config(false, 0);
  scenario::Scenario world(config.params);
  world.advance_to(round_dates(config.params).front());
  std::size_t slurm_ases = 0;
  for (const auto asn : world.graph().all_asns()) {
    if (world.routing().policy(asn).has_slurm()) ++slurm_ases;
  }
  EXPECT_GT(slurm_ases, 0u);
  for (const core::RoundReport& report : *baseline_rounds_) {
    EXPECT_GT(report.total_pairs, 0u);
    EXPECT_FALSE(report.round.scores.empty());
  }
}

TEST_F(SlurmIncrementalRound, SerialMatchesFullRecompute) {
  expect_incremental_matches_baseline(1);
}

TEST_F(SlurmIncrementalRound, TwoThreadsMatchFullRecompute) {
  expect_incremental_matches_baseline(2);
}

TEST_F(SlurmIncrementalRound, FourThreadsMatchFullRecompute) {
  expect_incremental_matches_baseline(4);
}

TEST_F(SlurmIncrementalRound, EightThreadsMatchFullRecompute) {
  expect_incremental_matches_baseline(8);
}

TEST_F(SlurmIncrementalRound, PublishedDatasetsAreByteIdentical) {
  core::IncrementalLongitudinalRunner runner(
      slurm_engine_config(/*incremental=*/true, /*num_threads=*/4));
  for (const util::Date date : round_dates(runner.config().params)) {
    runner.run_round(date);
  }
  const auto tmp = std::filesystem::temp_directory_path();
  const auto full_dir = tmp / "rovista_slurm_test_full";
  const auto incr_dir = tmp / "rovista_slurm_test_incr";
  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(incr_dir);
  ASSERT_TRUE(core::publish_scores(baseline_->store(), full_dir.string())
                  .has_value());
  ASSERT_TRUE(
      core::publish_scores(runner.store(), incr_dir.string()).has_value());
  EXPECT_EQ(read_dir(full_dir), read_dir(incr_dir));
  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(incr_dir);
}

TEST_F(SlurmIncrementalRound, DeltaInstallKeepsCacheAndViews) {
  // Direct proof the fallback is gone: across a VRP delta on a day with
  // no timeline events, converged routes stay cached and the
  // materialized SLURM views survive (invalidate_all + view clearing
  // would zero both).
  core::IncrementalLongitudinalRunner runner(
      slurm_engine_config(/*incremental=*/true, /*num_threads=*/1));
  const auto dates = round_dates(runner.config().params);
  runner.run_round(dates[0]);

  bgp::RoutingSystem& routing = runner.world().routing();
  ASSERT_GT(routing.cached_prefixes(), 0u);
  ASSERT_GT(routing.slurm_view_count(), 0u);

  std::size_t delta_size = 0;
  const scenario::VrpInstaller installer = delta_installer(&delta_size);
  util::Date date = dates[0];
  const util::Date limit = runner.config().params.end;
  bool saw_quiet_delta = false;
  while (!saw_quiet_delta && date < limit) {
    date = date + 1;
    // Event days legitimately drop cached routes (policy churn with
    // SLURM configured invalidates everything); re-warm a handful so a
    // quiet-day delta install has state to preserve.
    if (routing.cached_prefixes() == 0) {
      const auto prefixes = routing.all_prefixes();
      for (std::size_t i = 0; i < prefixes.size() && i < 8; ++i) {
        (void)routing.routes_for(prefixes[i]);
      }
    }
    const std::size_t views_before = routing.slurm_view_count();
    const scenario::AdvanceStats stats =
        runner.world().advance_to(date, installer);
    if (stats.events() != 0) continue;  // policy churn clears caches
    EXPECT_EQ(routing.slurm_view_count(), views_before);
    if (delta_size > 0) {
      EXPECT_GT(routing.cached_prefixes(), 0u)
          << "delta install on " << date.to_string()
          << " wiped the route cache";
      saw_quiet_delta = true;
    }
  }
  EXPECT_TRUE(saw_quiet_delta)
      << "no event-free day with a VRP delta inside the window";
}

TEST_F(SlurmIncrementalRound, CheckpointResumeMatchesUninterrupted) {
  // Two rounds, checkpoint, resume in a new runner at a different thread
  // count, final round bit-identical and the whole published series
  // byte-identical to the full-recompute baseline.
  core::IncrementalLongitudinalRunner partial(
      slurm_engine_config(/*incremental=*/true, /*num_threads=*/2));
  const auto dates = round_dates(partial.config().params);
  partial.run_round(dates[0]);
  partial.run_round(dates[1]);
  const persist::CheckpointState state = partial.checkpoint_state();

  core::IncrementalLongitudinalRunner resumed(
      slurm_engine_config(/*incremental=*/true, /*num_threads=*/4));
  ASSERT_TRUE(resumed.restore(state));
  EXPECT_EQ(resumed.completed_rounds(), 2u);
  const core::RoundReport last = resumed.run_round(dates[2]);
  expect_bit_identical((*baseline_rounds_)[2].round, last.round,
                       "slurm resume");

  const auto tmp = std::filesystem::temp_directory_path();
  const auto full_dir = tmp / "rovista_slurm_resume_full";
  const auto res_dir = tmp / "rovista_slurm_resume_incr";
  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(res_dir);
  ASSERT_TRUE(core::publish_scores(baseline_->store(), full_dir.string())
                  .has_value());
  ASSERT_TRUE(
      core::publish_scores(resumed.store(), res_dir.string()).has_value());
  EXPECT_EQ(read_dir(full_dir), read_dir(res_dir));
  std::filesystem::remove_all(full_dir);
  std::filesystem::remove_all(res_dir);
}

// ---------- Fault-knob zero golden regression ----------
//
// The fault-injection knobs (ScenarioParams::faults) must be RNG-stream
// gated exactly like --slurm-fraction: with every knob at its default 0,
// the published CSVs, the RVCP checkpoint container bytes, and the
// engine config digest are pinned byte-for-byte to the pre-fault build,
// at every thread count. The constants below were captured from the
// build immediately before the fault layer landed; any drift means the
// gating leaked into a default world.

std::uint64_t digest_string(std::uint64_t h, const std::string& bytes) {
  return persist::fnv1a64(
      std::span<const std::uint8_t>(
          reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()),
      h);
}

std::uint64_t digest_published_dir(const std::filesystem::path& dir) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [name, contents] : read_dir(dir)) {  // sorted by name
    h = digest_string(h, name);
    h = digest_string(h, contents);
  }
  return h;
}

constexpr std::uint64_t kGoldenPublishDigest = 0xc298de19204978e2ull;
constexpr std::uint64_t kGoldenCheckpointDigest = 0xc5709d22511d4b71ull;
constexpr std::uint64_t kGoldenConfigDigest = 0xb84dfbbc72591e94ull;

TEST(FaultKnobZeroIncrementalRound, GoldenBytesPinnedAtAllThreadCounts) {
  for (const int threads : {1, 2, 4, 8}) {
    const core::IncrementalConfig config =
        engine_config(/*incremental=*/true, threads);
    core::IncrementalLongitudinalRunner runner(config);
    for (const util::Date date : round_dates(config.params)) {
      runner.run_round(date);
    }

    const auto dir = std::filesystem::temp_directory_path() /
                     ("rovista_knob0_" + std::to_string(threads));
    std::filesystem::remove_all(dir);
    ASSERT_TRUE(core::publish_scores(runner.store(), dir.string()).has_value());
    const std::uint64_t publish_digest = digest_published_dir(dir);
    std::filesystem::remove_all(dir);

    const std::vector<std::uint8_t> checkpoint =
        persist::encode_checkpoint(runner.checkpoint_state());
    const std::uint64_t checkpoint_digest =
        persist::fnv1a64(std::span<const std::uint8_t>(checkpoint));
    const std::uint64_t config_digest =
        core::IncrementalLongitudinalRunner::config_digest(config);

    char actual[128];
    std::snprintf(actual, sizeof actual,
                  "publish=0x%016llx checkpoint=0x%016llx config=0x%016llx",
                  static_cast<unsigned long long>(publish_digest),
                  static_cast<unsigned long long>(checkpoint_digest),
                  static_cast<unsigned long long>(config_digest));
    EXPECT_EQ(publish_digest, kGoldenPublishDigest)
        << threads << " threads: " << actual;
    EXPECT_EQ(checkpoint_digest, kGoldenCheckpointDigest)
        << threads << " threads: " << actual;
    EXPECT_EQ(config_digest, kGoldenConfigDigest)
        << threads << " threads: " << actual;
  }
}

// ---------- Engine equivalence (epoch-snapshot vs replica) ----------
//
// The epoch-snapshot engine (snapshot/world_source.h) is a pure
// execution-strategy swap: one frozen published world shared by all
// readers instead of a private replica per worker. Equivalence is
// byte-level — identical rounds, identical published CSV bytes,
// identical RVCP checkpoint container bytes — and checkpoints must
// cross engines, which is why the engine mode stays out of the config
// digest (like num_threads).

core::IncrementalConfig engine_mode_config(snapshot::EngineMode mode,
                                           int num_threads) {
  core::IncrementalConfig config =
      engine_config(/*incremental=*/true, num_threads);
  config.engine = mode;
  return config;
}

TEST(EngineEquivalence, SeriesCsvAndCheckpointBytesMatch) {
  core::IncrementalLongitudinalRunner snapshot_runner(
      engine_mode_config(snapshot::EngineMode::kSnapshot, /*num_threads=*/4));
  core::IncrementalLongitudinalRunner replica_runner(
      engine_mode_config(snapshot::EngineMode::kReplica, /*num_threads=*/4));
  const auto dates = round_dates(snapshot_runner.config().params);
  for (const util::Date date : dates) {
    const core::RoundReport snap = snapshot_runner.run_round(date);
    const core::RoundReport repl = replica_runner.run_round(date);
    const std::string label = "engines @ " + date.to_string();
    expect_bit_identical(snap.round, repl.round, label.c_str());
  }

  const auto tmp = std::filesystem::temp_directory_path();
  const auto snap_dir = tmp / "rovista_engine_snap";
  const auto repl_dir = tmp / "rovista_engine_repl";
  std::filesystem::remove_all(snap_dir);
  std::filesystem::remove_all(repl_dir);
  ASSERT_TRUE(core::publish_scores(snapshot_runner.store(), snap_dir.string())
                  .has_value());
  ASSERT_TRUE(core::publish_scores(replica_runner.store(), repl_dir.string())
                  .has_value());
  EXPECT_EQ(read_dir(snap_dir), read_dir(repl_dir));
  std::filesystem::remove_all(snap_dir);
  std::filesystem::remove_all(repl_dir);

  // RVCP payloads are engine-invariant down to the container bytes...
  EXPECT_EQ(persist::encode_checkpoint(snapshot_runner.checkpoint_state()),
            persist::encode_checkpoint(replica_runner.checkpoint_state()));
  // ...which requires the engine mode to be excluded from the digest.
  EXPECT_EQ(core::IncrementalLongitudinalRunner::config_digest(
                engine_mode_config(snapshot::EngineMode::kSnapshot, 4)),
            core::IncrementalLongitudinalRunner::config_digest(
                engine_mode_config(snapshot::EngineMode::kReplica, 4)));
}

TEST(EngineEquivalence, CheckpointCrossesEngines) {
  // Two rounds under the replica engine, checkpoint, resume under the
  // snapshot engine at a different thread count: the final round and
  // the whole published series must be byte-identical to an
  // uninterrupted snapshot-engine run.
  core::IncrementalLongitudinalRunner uninterrupted(
      engine_mode_config(snapshot::EngineMode::kSnapshot, /*num_threads=*/4));
  const auto dates = round_dates(uninterrupted.config().params);
  std::vector<core::RoundReport> reference;
  for (const util::Date date : dates) {
    reference.push_back(uninterrupted.run_round(date));
  }

  core::IncrementalLongitudinalRunner partial(
      engine_mode_config(snapshot::EngineMode::kReplica, /*num_threads=*/2));
  partial.run_round(dates[0]);
  partial.run_round(dates[1]);

  core::IncrementalLongitudinalRunner resumed(
      engine_mode_config(snapshot::EngineMode::kSnapshot, /*num_threads=*/8));
  ASSERT_TRUE(resumed.restore(partial.checkpoint_state()));
  EXPECT_EQ(resumed.completed_rounds(), 2u);
  const core::RoundReport last = resumed.run_round(dates[2]);
  expect_bit_identical(reference[2].round, last.round, "cross-engine resume");

  const auto tmp = std::filesystem::temp_directory_path();
  const auto ref_dir = tmp / "rovista_xengine_ref";
  const auto res_dir = tmp / "rovista_xengine_res";
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(res_dir);
  ASSERT_TRUE(core::publish_scores(uninterrupted.store(), ref_dir.string())
                  .has_value());
  ASSERT_TRUE(
      core::publish_scores(resumed.store(), res_dir.string()).has_value());
  EXPECT_EQ(read_dir(ref_dir), read_dir(res_dir));
  std::filesystem::remove_all(ref_dir);
  std::filesystem::remove_all(res_dir);
}

TEST_F(IncrementalRound, RepeatedDateReusesEverything) {
  core::IncrementalLongitudinalRunner runner(
      engine_config(/*incremental=*/true, /*num_threads=*/2));
  const auto dates = round_dates(runner.config().params);
  const core::RoundReport first = runner.run_round(dates[0]);
  EXPECT_EQ(first.dirty_rows, first.total_rows);  // cold cache: all rows

  const core::RoundReport again = runner.run_round(dates[0]);
  EXPECT_TRUE(again.discovery_reused);
  EXPECT_FALSE(again.matrix_reset);
  EXPECT_EQ(again.events, 0u);
  EXPECT_EQ(again.vrp_announced + again.vrp_withdrawn, 0u);
  EXPECT_EQ(again.dirty_rows, 0u);
  EXPECT_EQ(again.executed_pairs, 0u);
  EXPECT_EQ(again.reused_pairs, again.total_pairs);
  expect_bit_identical(first.round, again.round, "repeated date");
}

}  // namespace
