// Shared parse→serialize bit-identity fuzz battery.
//
// A wire codec is *canonical* when every logical message has exactly
// one encoding: parse accepts precisely the byte strings its serializer
// can produce, and re-serializing a parsed message reproduces the input
// bit for bit. Both RQP v1 (src/serve/rqp.h) and the raw packet headers
// (net::headers) claim this property; this battery checks it the same
// way for both:
//
//   1. every *seed* (a known-valid encoding) must parse and round-trip
//      to identical bytes,
//   2. mutants — seeds with random byte flips, truncations, insertions
//      and extensions — must either be rejected, or round-trip to the
//      exact mutated bytes (an accepted mutant is just another valid
//      encoding; what it must never do is parse into a message that
//      re-encodes differently),
//   3. fully random buffers, same dichotomy.
//
// The codec under test is passed as a single `parse_reserialize`
// closure: input bytes → nullopt (rejected) or the re-serialized bytes
// of the parsed message.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

namespace rovista::test {

/// Deterministic splitmix64 — the battery must reproduce exactly.
class FuzzRng {
 public:
  explicit FuzzRng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
  std::uint64_t below(std::uint64_t n) { return n == 0 ? 0 : next() % n; }
  std::uint8_t byte() { return static_cast<std::uint8_t>(next()); }

 private:
  std::uint64_t state_;
};

using ParseReserialize = std::function<std::optional<std::vector<std::uint8_t>>(
    std::span<const std::uint8_t>)>;

struct WireFuzzStats {
  std::size_t cases = 0;
  std::size_t accepted = 0;  // inputs that parsed (all bit-identical)
};

namespace detail {

inline void check_case(const char* what, const ParseReserialize& codec,
                       const std::vector<std::uint8_t>& input,
                       WireFuzzStats& stats) {
  ++stats.cases;
  const auto out = codec(input);
  if (!out.has_value()) return;
  ++stats.accepted;
  ASSERT_EQ(*out, input) << what
                         << ": accepted input re-serialized differently "
                            "(non-canonical encoding, "
                         << input.size() << " bytes)";
}

inline std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& seed,
                                        FuzzRng& rng) {
  std::vector<std::uint8_t> m = seed;
  const int edits = 1 + static_cast<int>(rng.below(3));
  for (int e = 0; e < edits; ++e) {
    switch (rng.below(4)) {
      case 0:  // flip bits in one byte
        if (!m.empty()) m[rng.below(m.size())] ^= rng.byte();
        break;
      case 1:  // truncate
        if (!m.empty()) m.resize(rng.below(m.size()));
        break;
      case 2:  // append
        m.push_back(rng.byte());
        break;
      default:  // insert
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(
                                 rng.below(m.size() + 1)),
                 rng.byte());
        break;
    }
  }
  return m;
}

}  // namespace detail

/// Run the battery. Every seed must parse (and round-trip); mutants and
/// random buffers must round-trip *if* accepted. Returns the stats so
/// callers can assert corpus-specific expectations (e.g. "some mutants
/// were accepted" for codecs without checksums).
inline WireFuzzStats run_wire_fuzz(
    const char* what, const std::vector<std::vector<std::uint8_t>>& seeds,
    const ParseReserialize& codec, std::uint64_t rng_seed,
    int mutants_per_seed = 400, int random_cases = 4000,
    std::size_t max_random_len = 96) {
  WireFuzzStats stats;

  for (const std::vector<std::uint8_t>& seed : seeds) {
    const auto out = codec(seed);
    EXPECT_TRUE(out.has_value())
        << what << ": seed of " << seed.size() << " bytes rejected";
    if (out.has_value()) {
      EXPECT_EQ(*out, seed) << what << ": seed did not round-trip";
    }
  }

  FuzzRng rng(rng_seed);
  for (const std::vector<std::uint8_t>& seed : seeds) {
    for (int i = 0; i < mutants_per_seed; ++i) {
      detail::check_case(what, codec, detail::mutate(seed, rng), stats);
      if (::testing::Test::HasFatalFailure()) return stats;
    }
  }
  for (int i = 0; i < random_cases; ++i) {
    std::vector<std::uint8_t> buf(rng.below(max_random_len + 1));
    for (std::uint8_t& b : buf) b = rng.byte();
    detail::check_case(what, codec, buf, stats);
    if (::testing::Test::HasFatalFailure()) return stats;
  }
  return stats;
}

}  // namespace rovista::test
