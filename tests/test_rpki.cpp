// Tests for src/rpki: object model, certificate-chain validation by the
// relying party, RFC 6811 route origin validation, SLURM.
#include <gtest/gtest.h>

#include <algorithm>

#include "incremental/vrp_delta.h"
#include "rpki/relying_party.h"
#include "rpki/repository.h"
#include "rpki/slurm.h"
#include "rpki/validation.h"
#include "util/date.h"
#include "util/rng.h"

namespace {

using namespace rovista::rpki;
using rovista::net::Ipv4Address;
using rovista::net::Ipv4Prefix;
using rovista::topology::Rir;
using rovista::util::Date;

Ipv4Prefix pfx(const char* s) { return *Ipv4Prefix::parse(s); }

const Date kStart = Date::from_ymd(2022, 1, 1);
const Date kEnd = Date::from_ymd(2024, 1, 1);
const Date kToday = Date::from_ymd(2022, 6, 1);

// ---------- VrpSet / RFC 6811 ----------

TEST(Rfc6811, ValidInvalidUnknown) {
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});

  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 65001), RouteValidity::kValid);
  // Wrong origin.
  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 65002),
            RouteValidity::kInvalid);
  // Too specific for maxLength.
  EXPECT_EQ(vrps.validate(pfx("10.1.2.0/24"), 65001),
            RouteValidity::kInvalid);
  // Not covered at all.
  EXPECT_EQ(vrps.validate(pfx("10.2.0.0/16"), 65001),
            RouteValidity::kUnknown);
}

TEST(Rfc6811, MaxLengthAllowsMoreSpecifics) {
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 24, 65001});
  EXPECT_EQ(vrps.validate(pfx("10.1.2.0/24"), 65001), RouteValidity::kValid);
  EXPECT_EQ(vrps.validate(pfx("10.1.2.0/25"), 65001),
            RouteValidity::kInvalid);
}

TEST(Rfc6811, AnyMatchingVrpMakesValid) {
  // Two VRPs for the same prefix with different origins: either origin
  // validates.
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});
  vrps.add({pfx("10.1.0.0/16"), 16, 65002});
  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 65001), RouteValidity::kValid);
  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 65002), RouteValidity::kValid);
  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 65003),
            RouteValidity::kInvalid);
}

TEST(Rfc6811, As0VrpNeverValidates) {
  // RFC 6483 §4: AS 0 disallows all announcements of the space.
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 0});
  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 0), RouteValidity::kInvalid);
  EXPECT_EQ(vrps.validate(pfx("10.1.0.0/16"), 65001),
            RouteValidity::kInvalid);
}

TEST(VrpSet, CoveringQuery) {
  VrpSet vrps;
  vrps.add({pfx("10.0.0.0/8"), 8, 65000});
  vrps.add({pfx("10.1.0.0/16"), 24, 65001});
  const auto covering = vrps.covering(pfx("10.1.2.0/24"));
  EXPECT_EQ(covering.size(), 2u);
  EXPECT_TRUE(vrps.is_covered(pfx("10.1.2.0/24")));
  EXPECT_FALSE(vrps.is_covered(pfx("11.0.0.0/8")));
  EXPECT_EQ(vrps.size(), 2u);
}

// ---------- repositories / relying party ----------

TEST(Repository, IssueAndPublish) {
  Repository repo(Rir::kRipeNcc, 99, kStart, kEnd);
  ResourceSet rs;
  rs.prefixes.push_back(pfx("10.1.0.0/16"));
  rs.asns.push_back(65001);
  const auto serial = repo.issue_certificate("holder", rs, kStart, kEnd);
  ASSERT_TRUE(serial.has_value());
  EXPECT_TRUE(repo.publish_roa(*serial, 65001, {{pfx("10.1.0.0/16"), 16}},
                               kStart, kEnd));
  EXPECT_FALSE(repo.publish_roa(9999, 65001, {{pfx("10.1.0.0/16"), 16}},
                                kStart, kEnd));
  EXPECT_EQ(repo.roas().size(), 1u);
  EXPECT_EQ(repo.withdraw_roa(*serial, 65001, pfx("10.1.0.0/16")), 1u);
  EXPECT_TRUE(repo.roas().empty());
}

TEST(RelyingParty, ProducesVrpsFromValidChain) {
  RepositorySystem repos(7, kStart, kEnd);
  Repository& repo = repos.repository(Rir::kArin);
  ResourceSet rs;
  rs.prefixes.push_back(pfx("10.1.0.0/16"));
  const auto serial = repo.issue_certificate("holder", rs, kStart, kEnd);
  ASSERT_TRUE(serial.has_value());
  repo.publish_roa(*serial, 65001, {{pfx("10.1.0.0/16"), 20}}, kStart, kEnd);

  const ValidationRun run = run_relying_party(repos, kToday);
  EXPECT_EQ(run.vrps.size(), 1u);
  EXPECT_EQ(run.vrps.validate(pfx("10.1.0.0/18"), 65001),
            RouteValidity::kValid);
  EXPECT_TRUE(run.rejected.empty());
  EXPECT_GE(run.certificates_checked, 6u);  // 5 TAs + 1 CA
}

TEST(RelyingParty, RejectsExpiredRoa) {
  RepositorySystem repos(8, kStart, kEnd);
  Repository& repo = repos.repository(Rir::kApnic);
  ResourceSet rs;
  rs.prefixes.push_back(pfx("10.2.0.0/16"));
  const auto serial = repo.issue_certificate("holder", rs, kStart, kEnd);
  repo.publish_roa(*serial, 65002, {{pfx("10.2.0.0/16"), 16}}, kStart,
                   Date::from_ymd(2022, 3, 1));

  const ValidationRun run = run_relying_party(repos, kToday);
  EXPECT_TRUE(run.vrps.empty());
  ASSERT_EQ(run.rejected.size(), 1u);
  EXPECT_EQ(run.rejected[0].reason, RejectReason::kExpired);
}

TEST(RelyingParty, RejectsNotYetValidRoa) {
  RepositorySystem repos(9, kStart, kEnd);
  Repository& repo = repos.repository(Rir::kApnic);
  ResourceSet rs;
  rs.prefixes.push_back(pfx("10.2.0.0/16"));
  const auto serial = repo.issue_certificate("holder", rs, kStart, kEnd);
  repo.publish_roa(*serial, 65002, {{pfx("10.2.0.0/16"), 16}},
                   Date::from_ymd(2023, 1, 1), kEnd);
  const ValidationRun run = run_relying_party(repos, kToday);
  EXPECT_TRUE(run.vrps.empty());
  ASSERT_EQ(run.rejected.size(), 1u);
  EXPECT_EQ(run.rejected[0].reason, RejectReason::kNotYetValid);
}

TEST(RelyingParty, RejectsOverclaimingRoa) {
  // The ROA claims a prefix its signing certificate does not hold.
  RepositorySystem repos(10, kStart, kEnd);
  Repository& repo = repos.repository(Rir::kLacnic);
  ResourceSet rs;
  rs.prefixes.push_back(pfx("10.3.0.0/16"));
  const auto serial = repo.issue_certificate("holder", rs, kStart, kEnd);
  repo.publish_roa(*serial, 65003, {{pfx("99.0.0.0/8"), 8}}, kStart, kEnd);

  const ValidationRun run = run_relying_party(repos, kToday);
  EXPECT_TRUE(run.vrps.empty());
  ASSERT_EQ(run.rejected.size(), 1u);
  EXPECT_EQ(run.rejected[0].reason, RejectReason::kResourceOverclaim);
}

TEST(RelyingParty, ValidityWindowDrivesSnapshotDifferences) {
  // The same repository seen on two dates yields different VRP sets —
  // the mechanism behind the paper's Fig. 1 adoption curve.
  RepositorySystem repos(11, kStart, kEnd);
  Repository& repo = repos.repository(Rir::kAfrinic);
  ResourceSet rs;
  rs.prefixes.push_back(pfx("10.4.0.0/16"));
  const auto serial = repo.issue_certificate("holder", rs, kStart, kEnd);
  repo.publish_roa(*serial, 65004, {{pfx("10.4.0.0/16"), 16}},
                   Date::from_ymd(2022, 8, 1), kEnd);

  EXPECT_TRUE(run_relying_party(repos, kToday).vrps.empty());
  EXPECT_EQ(run_relying_party(repos, Date::from_ymd(2022, 9, 1)).vrps.size(),
            1u);
}

TEST(SimulatedCrypto, SignatureBinding) {
  const KeyPair key = SimulatedCrypto::derive(1234);
  SimulatedCrypto crypto;
  crypto.register_key(key);
  const std::uint64_t digest = 0xABCDEF;
  const std::uint64_t sig = key.sign(digest);
  EXPECT_TRUE(crypto.verify(key.key_id, digest, sig));
  EXPECT_FALSE(crypto.verify(key.key_id, digest + 1, sig));
  EXPECT_FALSE(crypto.verify(key.key_id, digest, sig ^ 1));
  EXPECT_FALSE(crypto.verify(key.key_id + 1, digest, sig));
}

TEST(ResourceSet, Containment) {
  ResourceSet big;
  big.prefixes.push_back(pfx("10.0.0.0/8"));
  big.asns.push_back(65001);
  ResourceSet small;
  small.prefixes.push_back(pfx("10.1.0.0/16"));
  EXPECT_TRUE(big.contains(small));
  small.asns.push_back(65002);
  EXPECT_FALSE(big.contains(small));  // unknown ASN
  ResourceSet outside;
  outside.prefixes.push_back(pfx("11.0.0.0/8"));
  EXPECT_FALSE(big.contains(outside));
}

// ---------- SLURM ----------

TEST(Slurm, PrefixFilterRemovesVrps) {
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});
  vrps.add({pfx("10.2.0.0/16"), 16, 65002});

  SlurmFile slurm;
  slurm.filters.push_back({pfx("10.1.0.0/16"), std::nullopt});
  const VrpSet out = slurm.apply(vrps);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.validate(pfx("10.1.0.0/16"), 65001),
            RouteValidity::kUnknown);  // filtered -> uncovered
  EXPECT_EQ(out.validate(pfx("10.2.0.0/16"), 65002), RouteValidity::kValid);
}

TEST(Slurm, AsnFilter) {
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});
  vrps.add({pfx("10.2.0.0/16"), 16, 65002});
  SlurmFile slurm;
  slurm.filters.push_back({std::nullopt, 65002});
  const VrpSet out = slurm.apply(vrps);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.validate(pfx("10.2.0.0/16"), 65002), RouteValidity::kUnknown);
}

TEST(Slurm, FilterWithBothFieldsRequiresBoth) {
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});
  SlurmFile slurm;
  slurm.filters.push_back({pfx("10.1.0.0/16"), 65099});  // ASN differs
  EXPECT_EQ(slurm.apply(vrps).size(), 1u);
}

TEST(Slurm, AssertionAddsLocalVrp) {
  VrpSet vrps;
  SlurmFile slurm;
  slurm.assertions.push_back({pfx("10.9.0.0/16"), 20, 65009});
  const VrpSet out = slurm.apply(vrps);
  EXPECT_EQ(out.validate(pfx("10.9.1.0/20"), 65009), RouteValidity::kValid);
  // An assertion can make a previously invalid announcement locally
  // acceptable — the §7.1 mechanism for ROV ASes accepting invalids.
  EXPECT_EQ(out.validate(pfx("10.9.0.0/16"), 65009), RouteValidity::kValid);
}

TEST(Slurm, EmptyFileIsIdentity) {
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});
  const SlurmFile slurm;
  const VrpSet out = slurm.apply(vrps);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(out.validate(pfx("10.1.0.0/16"), 65001), RouteValidity::kValid);
}

TEST(Slurm, AssertionReAddsFilteredVrp) {
  // A filter and an assertion can name the same VRP: RFC 8416 applies
  // filters to relying-party output only, so the locally asserted copy
  // must survive.
  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 65001});
  SlurmFile slurm;
  slurm.filters.push_back({pfx("10.1.0.0/16"), std::nullopt});
  slurm.assertions.push_back({pfx("10.1.0.0/16"), 16, 65001});
  const VrpSet out = slurm.apply(vrps);
  EXPECT_EQ(out.validate(pfx("10.1.0.0/16"), 65001), RouteValidity::kValid);
}

TEST(Slurm, AssertionMaxLengthFollowsRfc6811) {
  // Default maxLength is the prefix length (RFC 8416 §3.4.2): more
  // specifics are Invalid. An explicit maxLength loosens that.
  VrpSet vrps;
  SlurmFile tight;
  tight.assertions.push_back({pfx("10.9.0.0/16"), std::nullopt, 65009});
  const VrpSet t = tight.apply(vrps);
  EXPECT_EQ(t.validate(pfx("10.9.0.0/16"), 65009), RouteValidity::kValid);
  EXPECT_EQ(t.validate(pfx("10.9.1.0/24"), 65009), RouteValidity::kInvalid);

  SlurmFile loose;
  loose.assertions.push_back({pfx("10.9.0.0/16"), 24, 65009});
  const VrpSet l = loose.apply(vrps);
  EXPECT_EQ(l.validate(pfx("10.9.1.0/24"), 65009), RouteValidity::kValid);
  EXPECT_EQ(l.validate(pfx("10.9.1.0/25"), 65009), RouteValidity::kInvalid);
  // Wrong origin under the asserted space stays Invalid either way.
  EXPECT_EQ(l.validate(pfx("10.9.0.0/16"), 65010), RouteValidity::kInvalid);
}

TEST(Slurm, ApplyDeltaMatchesFullApplyOnRandomChurn) {
  // Property: for random base sets, random churn and a random SLURM
  // file, patching the old view with the delta gives the same VRP *set*
  // as applying the file to the new base. A small 10.x universe forces
  // prefix collisions, duplicate VRPs and filter/assertion overlap.
  rovista::util::Rng rng(20260805);
  const auto random_vrp = [&](rovista::util::Rng& r) {
    const std::uint32_t block = static_cast<std::uint32_t>(r.uniform_u64(0, 3));
    const std::uint32_t sub = static_cast<std::uint32_t>(r.uniform_u64(0, 3));
    const std::uint8_t len = r.bernoulli(0.5) ? 16 : 24;
    const Ipv4Prefix p(Ipv4Address((10u << 24) | (block << 16) | (sub << 8)),
                       len);
    const std::uint8_t maxlen =
        static_cast<std::uint8_t>(r.uniform_u64(len, 24));
    const Asn asn = static_cast<Asn>(65000 + r.uniform_u64(0, 3));
    return Vrp{p, maxlen, asn};
  };

  for (int iter = 0; iter < 200; ++iter) {
    std::vector<Vrp> prev_list;
    const std::size_t n = rng.uniform_u64(0, 12);
    for (std::size_t i = 0; i < n; ++i) prev_list.push_back(random_vrp(rng));
    // Churn: drop a random subset, add fresh VRPs (duplicates allowed).
    std::vector<Vrp> next_list;
    for (const Vrp& v : prev_list) {
      if (!rng.bernoulli(0.35)) next_list.push_back(v);
    }
    const std::size_t added = rng.uniform_u64(0, 6);
    for (std::size_t i = 0; i < added; ++i) {
      next_list.push_back(random_vrp(rng));
    }

    SlurmFile slurm;
    const std::size_t nf = rng.uniform_u64(0, 2);
    for (std::size_t i = 0; i < nf; ++i) {
      const Vrp v = random_vrp(rng);
      SlurmPrefixFilter f;
      if (rng.bernoulli(0.7)) f.prefix = v.prefix;
      if (!f.prefix.has_value() || rng.bernoulli(0.3)) f.asn = v.asn;
      slurm.filters.push_back(f);
    }
    const std::size_t na = rng.uniform_u64(0, 2);
    for (std::size_t i = 0; i < na; ++i) {
      const Vrp v = random_vrp(rng);
      slurm.assertions.push_back({v.prefix, v.max_length, v.asn});
    }

    const VrpSet prev(prev_list);
    const VrpSet next(next_list);
    using rovista::incremental::VrpDeltaComputer;
    const auto delta = VrpDeltaComputer::diff(prev, next);

    VrpSet patched = slurm.apply(prev);
    slurm.apply_delta(patched, delta.announced, delta.withdrawn);
    const VrpSet full = slurm.apply(next);
    ASSERT_EQ(VrpDeltaComputer::flatten(patched),
              VrpDeltaComputer::flatten(full))
        << "iteration " << iter;

    // Spot-check: validation agrees at a few addresses.
    for (const char* probe : {"10.0.0.0/16", "10.1.1.0/24", "10.2.2.0/24"}) {
      for (Asn asn = 65000; asn < 65004; ++asn) {
        ASSERT_EQ(patched.validate(pfx(probe), asn),
                  full.validate(pfx(probe), asn))
            << "iteration " << iter << " probe " << probe;
      }
    }
  }
}

TEST(Roa, DigestChangesWithContent) {
  Roa a;
  a.asn = 65001;
  a.prefixes = {{pfx("10.1.0.0/16"), 16}};
  a.not_before = kStart;
  a.not_after = kEnd;
  Roa b = a;
  EXPECT_EQ(a.payload_digest(), b.payload_digest());
  b.asn = 65002;
  EXPECT_NE(a.payload_digest(), b.payload_digest());
  Roa c = a;
  c.prefixes[0].max_length = 24;
  EXPECT_NE(a.payload_digest(), c.payload_digest());
}

}  // namespace
