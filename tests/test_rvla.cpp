// RVLA archive tests (src/analytics + the engine/serve wiring):
//
//  - codec: encode→decode→re-encode is byte-identical for head, data
//    and whole archives (canonical encoding), every strict truncation
//    of either file is rejected, every single-byte corruption of either
//    file is rejected (head CRC, preamble checks and per-frame CRCs
//    leave no unprotected byte), the shared mutate harness
//    (tests/wire_fuzz.h) holds the accepted-implies-canonical dichotomy
//    over mutants and random buffers,
//  - writer/cursor: growing an archive frame by frame produces the
//    exact bytes of encoding it at once, the cursor streams the frames
//    back, tolerates crash debris past the committed length (which the
//    next append truncates away), and rejects a data file cut below it,
//  - queries: every streaming query in src/analytics/queries.h is
//    oracle-gated against a LongitudinalStore fed the same rounds —
//    value-equal through the shared CSV renderers, and byte-equal
//    between publish_archive and core::publish_scores — across
//    randomized series with same-date re-records, duplicate ASNs,
//    empty rounds and health frames,
//  - wiring: IncrementalLongitudinalRunner --archive appends match the
//    store it records, and ScoreFeed::seed_from_archive reproduces
//    seed_from_store's snapshot.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analytics/queries.h"
#include "analytics/rvla.h"
#include "analytics/rvla_io.h"
#include "core/longitudinal.h"
#include "core/publish.h"
#include "serve/score_feed.h"
#include "util/date.h"
#include "wire_fuzz.h"

namespace {

using namespace rovista;
using analytics::RvlaCursor;
using analytics::RvlaFrame;
using analytics::RvlaHead;
using analytics::RvlaImage;
using analytics::RvlaWriter;
using core::Asn;
using core::RoundHealth;
using test::FuzzRng;
using util::Date;

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rovista-rvla-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
  }
  ~TempDir() { fs::remove_all(path); }
  static int counter;
};
int TempDir::counter = 0;

std::vector<std::uint8_t> read_bytes(const fs::path& p) {
  std::ifstream f(p, std::ios::binary);
  std::vector<std::uint8_t> out;
  char c;
  while (f.get(c)) out.push_back(static_cast<std::uint8_t>(c));
  return out;
}

void write_bytes(const fs::path& p, std::span<const std::uint8_t> bytes) {
  std::ofstream f(p, std::ios::binary | std::ios::trunc);
  f.write(reinterpret_cast<const char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
}

RoundHealth sample_health(std::uint64_t k) {
  RoundHealth h;
  h.stale_ases = 3 + k;
  h.expired_ases = k % 2;
  h.diverged_ases = k % 3;
  h.max_staleness_days = static_cast<std::int64_t>(7 * k);
  h.error_reports = 2 * k;
  return h;
}

/// A small mixed corpus: empty archive, single plain frame, multi-round
/// series with a same-date re-record and a health frame.
std::vector<std::vector<RvlaFrame>> corpus() {
  const Date d0 = Date::from_ymd(2021, 7, 1);
  RoundHealth none;

  std::vector<RvlaFrame> one;
  one.push_back(analytics::make_frame(
      d0, std::vector<std::pair<Asn, double>>{{65001, 50.0}, {65002, 0.0}},
      false, none));

  std::vector<RvlaFrame> series;
  series.push_back(analytics::make_frame(
      d0, std::vector<std::pair<Asn, double>>{{7, 100.0}, {9, 0.0}}, false,
      none));
  series.push_back(analytics::make_frame(
      d0, std::vector<std::pair<Asn, double>>{{9, 25.0}}, false, none));
  series.push_back(analytics::make_frame(
      d0 + 30, std::vector<std::pair<Asn, double>>{}, false, none));
  series.push_back(analytics::make_frame(
      d0 + 60, std::vector<std::pair<Asn, double>>{{7, 0.0}, {9, 100.0}},
      true, sample_health(1)));

  return {{}, one, series};
}

// ---------- codec ----------

TEST(RvlaCodec, FrameSizeMatchesEncoding) {
  for (const bool has_health : {false, true}) {
    for (const std::uint64_t rows : {0, 1, 5}) {
      std::vector<std::pair<Asn, double>> scores;
      for (std::uint64_t i = 0; i < rows; ++i) {
        scores.emplace_back(static_cast<Asn>(100 + i), 12.5 * i);
      }
      const RvlaFrame frame = analytics::make_frame(
          Date::from_ymd(2022, 1, 1), scores, has_health, sample_health(2));
      EXPECT_EQ(frame.has_health, has_health);
      EXPECT_EQ(analytics::encode_frame(frame, 8).size(),
                analytics::frame_size(rows, has_health));
    }
  }
}

TEST(RvlaCodec, MakeFrameCanonicalizesUnsortedDuplicates) {
  RoundHealth none;
  // Unsorted, with a duplicate ASN: sorted output, last write wins —
  // the end state LongitudinalStore::record reaches for the round.
  const RvlaFrame frame = analytics::make_frame(
      Date::from_ymd(2022, 1, 1),
      std::vector<std::pair<Asn, double>>{
          {9, 10.0}, {3, 20.0}, {9, 30.0}, {1, 40.0}},
      false, none);
  EXPECT_EQ(frame.asns, (std::vector<Asn>{1, 3, 9}));
  EXPECT_EQ(frame.scores, (std::vector<double>{40.0, 20.0, 30.0}));
}

TEST(RvlaCodec, EncodeDecodeReencodeBitIdentical) {
  for (const std::vector<RvlaFrame>& frames : corpus()) {
    const RvlaImage image = analytics::encode_archive(frames);
    ASSERT_EQ(image.head.size(), analytics::kRvlaHeadSize);

    std::string error;
    const auto decoded =
        analytics::decode_archive(image.head, image.data, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(*decoded, frames);

    const RvlaImage again = analytics::encode_archive(*decoded);
    EXPECT_EQ(again.head, image.head);
    EXPECT_EQ(again.data, image.data);
  }
}

TEST(RvlaCodec, EmptyArchiveHeadInvariants) {
  const RvlaImage image = analytics::encode_archive({});
  std::string error;
  const auto head = analytics::decode_head(image.head, &error);
  ASSERT_TRUE(head.has_value()) << error;
  EXPECT_EQ(head->frame_count, 0u);
  EXPECT_EQ(head->data_size, analytics::kRvlaPreambleSize);
  EXPECT_EQ(head->last_frame_offset, 0u);
  EXPECT_EQ(image.data.size(), analytics::kRvlaPreambleSize);
}

TEST(RvlaCodec, EveryTruncationRejected) {
  for (const std::vector<RvlaFrame>& frames : corpus()) {
    const RvlaImage image = analytics::encode_archive(frames);
    for (std::size_t n = 0; n < image.head.size(); ++n) {
      std::string error;
      const std::vector<std::uint8_t> cut(image.head.begin(),
                                          image.head.begin() + n);
      EXPECT_FALSE(
          analytics::decode_archive(cut, image.data, &error).has_value())
          << "head truncated to " << n << " bytes accepted";
    }
    for (std::size_t n = 0; n < image.data.size(); ++n) {
      std::string error;
      const std::vector<std::uint8_t> cut(image.data.begin(),
                                          image.data.begin() + n);
      EXPECT_FALSE(
          analytics::decode_archive(image.head, cut, &error).has_value())
          << "data truncated to " << n << " bytes accepted";
    }
  }
}

TEST(RvlaCodec, EverySingleByteCorruptionRejected) {
  for (const std::vector<RvlaFrame>& frames : corpus()) {
    const RvlaImage image = analytics::encode_archive(frames);
    for (const std::uint8_t mask : {std::uint8_t{0xFF}, std::uint8_t{0x01}}) {
      for (std::size_t i = 0; i < image.head.size(); ++i) {
        std::vector<std::uint8_t> bad = image.head;
        bad[i] ^= mask;
        std::string error;
        EXPECT_FALSE(
            analytics::decode_archive(bad, image.data, &error).has_value())
            << "head byte " << i << " ^ " << int{mask} << " accepted";
      }
      for (std::size_t i = 0; i < image.data.size(); ++i) {
        std::vector<std::uint8_t> bad = image.data;
        bad[i] ^= mask;
        std::string error;
        EXPECT_FALSE(
            analytics::decode_archive(image.head, bad, &error).has_value())
            << "data byte " << i << " ^ " << int{mask} << " accepted";
      }
    }
  }
}

TEST(RvlaCodec, RejectsDatesGoingBackwards) {
  RoundHealth none;
  const Date d0 = Date::from_ymd(2022, 5, 1);
  // Hand-build a two-frame data file whose dates regress; the head is
  // made consistent so only the date check can reject it.
  std::vector<std::uint8_t> data = analytics::encode_data_preamble();
  const RvlaFrame f1 = analytics::make_frame(
      d0, std::vector<std::pair<Asn, double>>{{1, 1.0}}, false, none);
  const RvlaFrame f2 = analytics::make_frame(
      d0 - 1, std::vector<std::pair<Asn, double>>{{2, 2.0}}, false, none);
  const std::uint64_t off1 = data.size();
  const auto b1 = analytics::encode_frame(f1, 0);
  data.insert(data.end(), b1.begin(), b1.end());
  const std::uint64_t off2 = data.size();
  const auto b2 = analytics::encode_frame(f2, off1);
  data.insert(data.end(), b2.begin(), b2.end());
  RvlaHead head;
  head.frame_count = 2;
  head.data_size = data.size();
  head.last_frame_offset = off2;

  std::string error;
  EXPECT_FALSE(analytics::decode_archive(analytics::encode_head(head), data,
                                         &error)
                   .has_value());
  EXPECT_EQ(error, "frame: dates go backwards");
}

TEST(RvlaCodec, WireFuzzBattery) {
  // head || data concatenated; the codec splits at the fixed head size.
  std::vector<std::vector<std::uint8_t>> seeds;
  for (const std::vector<RvlaFrame>& frames : corpus()) {
    const RvlaImage image = analytics::encode_archive(frames);
    std::vector<std::uint8_t> seed = image.head;
    seed.insert(seed.end(), image.data.begin(), image.data.end());
    seeds.push_back(std::move(seed));
  }
  const test::ParseReserialize codec =
      [](std::span<const std::uint8_t> input)
      -> std::optional<std::vector<std::uint8_t>> {
    if (input.size() < analytics::kRvlaHeadSize) return std::nullopt;
    std::string error;
    const auto frames = analytics::decode_archive(
        input.subspan(0, analytics::kRvlaHeadSize),
        input.subspan(analytics::kRvlaHeadSize), &error);
    if (!frames.has_value()) return std::nullopt;
    const RvlaImage image = analytics::encode_archive(*frames);
    std::vector<std::uint8_t> out = image.head;
    out.insert(out.end(), image.data.begin(), image.data.end());
    return out;
  };
  const test::WireFuzzStats stats =
      test::run_wire_fuzz("rvla", seeds, codec, 0x51A4C0DEu);
  // Every field is CRC-protected or validated, so no mutant survives;
  // the seeds themselves are the only accepted inputs.
  EXPECT_EQ(stats.accepted, 0u);
}

// ---------- writer / cursor ----------

std::vector<RvlaFrame> drain(const std::string& directory) {
  std::string error;
  auto cursor = RvlaCursor::open(directory, &error);
  EXPECT_TRUE(cursor.has_value()) << error;
  std::vector<RvlaFrame> out;
  if (!cursor.has_value()) return out;
  while (auto frame = cursor->next()) out.push_back(std::move(*frame));
  EXPECT_TRUE(cursor->done());
  EXPECT_FALSE(cursor->failed()) << cursor->error();
  return out;
}

TEST(RvlaIo, IncrementalAppendsMatchEncodeAtOnce) {
  for (const std::vector<RvlaFrame>& frames : corpus()) {
    TempDir dir;
    std::string error;
    auto writer = RvlaWriter::create(dir.path.string(), {}, &error);
    ASSERT_TRUE(writer.has_value()) << error;
    for (const RvlaFrame& frame : frames) {
      ASSERT_TRUE(writer->append(frame, &error)) << error;
    }
    const RvlaImage image = analytics::encode_archive(frames);
    const analytics::RvlaPaths paths =
        analytics::RvlaPaths::in(dir.path.string());
    EXPECT_EQ(read_bytes(paths.head), image.head);
    EXPECT_EQ(read_bytes(paths.data), image.data);
    EXPECT_EQ(drain(dir.path.string()), frames);
  }
}

TEST(RvlaIo, CreateWithInitialFramesMatchesGrown) {
  const std::vector<RvlaFrame> frames = corpus().back();
  TempDir dir;
  std::string error;
  // Create over nothing, then atomically replace with a shorter archive:
  // the rewrite must fully supersede the old bytes.
  auto first = RvlaWriter::create(dir.path.string(), frames, &error);
  ASSERT_TRUE(first.has_value()) << error;
  EXPECT_EQ(drain(dir.path.string()), frames);

  const std::vector<RvlaFrame> shorter(frames.begin(), frames.end() - 1);
  auto second = RvlaWriter::create(dir.path.string(), shorter, &error);
  ASSERT_TRUE(second.has_value()) << error;
  const RvlaImage image = analytics::encode_archive(shorter);
  const analytics::RvlaPaths paths =
      analytics::RvlaPaths::in(dir.path.string());
  EXPECT_EQ(read_bytes(paths.head), image.head);
  EXPECT_EQ(read_bytes(paths.data), image.data);
}

TEST(RvlaIo, CursorToleratesCrashDebrisStrictCodecDoesNot) {
  const std::vector<RvlaFrame> frames = corpus().back();
  TempDir dir;
  std::string error;
  auto writer = RvlaWriter::create(dir.path.string(), frames, &error);
  ASSERT_TRUE(writer.has_value()) << error;

  // A crash between the data append and the head swap leaves bytes past
  // the committed length. The cursor must ignore them...
  const analytics::RvlaPaths paths =
      analytics::RvlaPaths::in(dir.path.string());
  std::vector<std::uint8_t> data = read_bytes(paths.data);
  const std::vector<std::uint8_t> committed = data;
  for (int i = 0; i < 17; ++i) data.push_back(0xEE);
  write_bytes(paths.data, data);
  EXPECT_EQ(drain(dir.path.string()), frames);

  // ...the strict codec must not (it models exact committed bytes)...
  EXPECT_FALSE(
      analytics::decode_archive(read_bytes(paths.head), data, &error)
          .has_value());

  // ...and the next append truncates the debris away before committing.
  RoundHealth none;
  const RvlaFrame extra = analytics::make_frame(
      frames.back().date + 10,
      std::vector<std::pair<Asn, double>>{{42, 75.0}}, false, none);
  ASSERT_TRUE(writer->append(extra, &error)) << error;
  std::vector<RvlaFrame> grown = frames;
  grown.push_back(extra);
  const RvlaImage image = analytics::encode_archive(grown);
  EXPECT_EQ(read_bytes(paths.data), image.data);
  EXPECT_EQ(drain(dir.path.string()), grown);
}

TEST(RvlaIo, DataCutBelowCommittedLengthFails) {
  const std::vector<RvlaFrame> frames = corpus().back();
  TempDir dir;
  std::string error;
  ASSERT_TRUE(RvlaWriter::create(dir.path.string(), frames, &error)
                  .has_value())
      << error;
  const analytics::RvlaPaths paths =
      analytics::RvlaPaths::in(dir.path.string());
  std::vector<std::uint8_t> data = read_bytes(paths.data);
  data.resize(data.size() - 1);
  write_bytes(paths.data, data);

  auto cursor = RvlaCursor::open(dir.path.string(), &error);
  bool failed = !cursor.has_value();
  if (cursor.has_value()) {
    while (cursor->next()) {
    }
    failed = cursor->failed();
  }
  EXPECT_TRUE(failed);
}

TEST(RvlaIo, CorruptHeadRefusesToOpen) {
  TempDir dir;
  std::string error;
  ASSERT_TRUE(RvlaWriter::create(dir.path.string(), corpus().back(), &error)
                  .has_value())
      << error;
  const analytics::RvlaPaths paths =
      analytics::RvlaPaths::in(dir.path.string());
  std::vector<std::uint8_t> head = read_bytes(paths.head);
  head[10] ^= 0xFF;
  write_bytes(paths.head, head);
  EXPECT_FALSE(RvlaCursor::open(dir.path.string(), &error).has_value());
  EXPECT_NE(error.find("head"), std::string::npos) << error;
}

// ---------- streaming queries vs the in-memory store ----------

core::AsScore as_score(Asn asn, double score) {
  core::AsScore s;
  s.asn = asn;
  s.score = score;
  return s;
}

/// One randomized series: parallel (store, archive) fed the same
/// rounds, plus the raw per-date last-write-wins rows for brute-force
/// churn checking.
struct Series {
  core::LongitudinalStore store;
  TempDir dir;
  std::map<Date, std::map<Asn, double>> rows_by_date;
};

void build_series(std::uint64_t seed, Series& out) {
  FuzzRng rng(seed);
  std::string error;
  auto writer = RvlaWriter::create(out.dir.path.string(), {}, &error);
  ASSERT_TRUE(writer.has_value()) << error;

  const Date base = Date::from_ymd(2021, 3, 10);
  int date_index = 0;
  const int rounds = 40;
  for (int round = 0; round < rounds; ++round) {
    // Mostly advance, sometimes re-record the same date.
    if (round > 0 && rng.below(100) >= 30) ++date_index;
    const Date date = base + 13 * date_index;

    std::vector<std::pair<Asn, double>> pairs;
    const std::size_t n = rng.below(9);  // occasionally an empty round
    for (std::size_t i = 0; i < n; ++i) {
      pairs.emplace_back(static_cast<Asn>(64500 + rng.below(12)),
                         12.5 * static_cast<double>(rng.below(9)));
    }
    const bool has_health = rng.below(4) == 0;
    const RoundHealth health = sample_health(rng.below(6));

    std::vector<core::AsScore> scores;
    scores.reserve(pairs.size());
    for (const auto& [asn, score] : pairs) {
      scores.push_back(as_score(asn, score));
    }
    out.store.record(date, scores);
    if (has_health) out.store.record_health(date, health);
    for (const auto& [asn, score] : pairs) {
      out.rows_by_date[date][asn] = score;
    }

    ASSERT_TRUE(writer->append(
        analytics::make_frame(date, pairs, has_health, health), &error))
        << error;
  }
  ASSERT_EQ(out.store.index_divergence(), "");
}

void expect_queries_match_store(const Series& series) {
  const std::string dir = series.dir.path.string();
  const core::LongitudinalStore& store = series.store;
  std::string error;

  // Latest score per AS (Fig. 5 input).
  const auto latest = analytics::latest_scores(dir, &error);
  ASSERT_TRUE(latest.has_value()) << error;
  std::vector<std::pair<Asn, double>> store_latest;
  for (const Asn asn : store.ases()) {
    store_latest.emplace_back(asn, *store.latest_score(asn));
  }
  EXPECT_EQ(*latest, store_latest);
  {
    std::vector<std::pair<Asn, double>> with_asn;
    const std::vector<double> plain = store.latest_scores();
    for (std::size_t i = 0; i < plain.size(); ++i) {
      with_asn.emplace_back(store_latest[i].first, plain[i]);
    }
    EXPECT_EQ(analytics::latest_cdf_csv(*latest),
              analytics::latest_cdf_csv(with_asn));
  }

  // Fig. 6 trend at several thresholds.
  for (const double threshold : {0.0, 50.0, 100.0}) {
    const auto trend = analytics::fraction_trend(dir, threshold, &error);
    ASSERT_TRUE(trend.has_value()) << error;
    std::vector<std::pair<Date, double>> store_trend;
    for (const Date date : store.dates()) {
      store_trend.emplace_back(date,
                               store.fraction_at_least(date, threshold));
    }
    EXPECT_EQ(*trend, store_trend) << "threshold " << threshold;
  }

  // Per-AS series, including an AS the archive never saw.
  std::vector<Asn> probe = store.ases();
  probe.push_back(1);
  for (const Asn asn : probe) {
    const auto got = analytics::as_series(dir, asn, &error);
    ASSERT_TRUE(got.has_value()) << error;
    EXPECT_EQ(*got, store.series(asn)) << "asn " << asn;
    EXPECT_EQ(analytics::series_csv(asn, *got),
              analytics::series_csv(asn, store.series(asn)));
  }

  // §7.3 jumps across several windows (including degenerate low >= high).
  const std::pair<double, double> windows[] = {
      {0.0, 100.0}, {25.0, 75.0}, {0.0, 50.0}, {100.0, 0.0}};
  for (const auto& [low, high] : windows) {
    const auto jumps = analytics::score_jumps(dir, low, high, &error);
    ASSERT_TRUE(jumps.has_value()) << error;
    EXPECT_EQ(*jumps, store.score_jumps(low, high))
        << "window " << low << ".." << high;
  }

  // Churn vs brute force over the recorded rows.
  const auto churn = analytics::churn(dir, &error);
  ASSERT_TRUE(churn.has_value()) << error;
  std::vector<analytics::ChurnRow> expected;
  const std::map<Asn, double>* prev = nullptr;
  Date prev_date;
  for (const auto& [date, rows] : series.rows_by_date) {
    if (rows.empty()) continue;
    if (prev != nullptr) {
      analytics::ChurnRow row;
      row.from = prev_date;
      row.to = date;
      double total = 0.0;
      for (const auto& [asn, score] : rows) {
        const auto it = prev->find(asn);
        if (it == prev->end()) continue;
        ++row.measured_both;
        if (score != it->second) ++row.changed;
        total += score > it->second ? score - it->second
                                    : it->second - score;
      }
      row.mean_abs_delta =
          row.measured_both == 0
              ? 0.0
              : total / static_cast<double>(row.measured_both);
      expected.push_back(row);
    }
    prev = &rows;
    prev_date = date;
  }
  ASSERT_EQ(churn->size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*churn)[i].from, expected[i].from);
    EXPECT_EQ((*churn)[i].to, expected[i].to);
    EXPECT_EQ((*churn)[i].measured_both, expected[i].measured_both);
    EXPECT_EQ((*churn)[i].changed, expected[i].changed);
    EXPECT_DOUBLE_EQ((*churn)[i].mean_abs_delta, expected[i].mean_abs_delta);
  }

  // Published dataset: byte-identical to core::publish_scores.
  TempDir from_store;
  TempDir from_archive;
  ASSERT_TRUE(
      core::publish_scores(store, from_store.path.string()).has_value());
  const auto written =
      analytics::publish_archive(dir, from_archive.path.string(), &error);
  ASSERT_TRUE(written.has_value()) << error;
  EXPECT_EQ(*written, store.dates().size());

  std::map<std::string, std::vector<std::uint8_t>> a, b;
  for (const auto& entry : fs::directory_iterator(from_store.path)) {
    a[entry.path().filename().string()] = read_bytes(entry.path());
  }
  for (const auto& entry : fs::directory_iterator(from_archive.path)) {
    b[entry.path().filename().string()] = read_bytes(entry.path());
  }
  EXPECT_EQ(a, b);
}

TEST(RvlaQueries, RandomizedSeriesMatchStoreBitForBit) {
  for (const std::uint64_t seed : {1ull, 42ull, 2023ull, 65537ull}) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Series series;
    build_series(seed, series);
    if (::testing::Test::HasFatalFailure()) return;
    expect_queries_match_store(series);
  }
}

TEST(RvlaQueries, ArchiveInfoSummarizes) {
  Series series;
  build_series(7, series);
  if (::testing::Test::HasFatalFailure()) return;

  std::string error;
  const auto info = analytics::archive_info(series.dir.path.string(), &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->frames, 40u);
  EXPECT_EQ(info->as_count, series.store.as_count());
  EXPECT_EQ(info->date_count, series.store.dates().size());
  ASSERT_TRUE(info->first_date.has_value());
  EXPECT_EQ(*info->first_date, series.store.dates().front());
  EXPECT_EQ(*info->last_date, series.store.dates().back());
}

TEST(RvlaQueries, EmptyArchiveAnswersEmpty) {
  TempDir dir;
  std::string error;
  ASSERT_TRUE(RvlaWriter::create(dir.path.string(), {}, &error).has_value())
      << error;
  const auto info = analytics::archive_info(dir.path.string(), &error);
  ASSERT_TRUE(info.has_value()) << error;
  EXPECT_EQ(info->frames, 0u);
  EXPECT_FALSE(info->first_date.has_value());
  const auto latest = analytics::latest_scores(dir.path.string(), &error);
  ASSERT_TRUE(latest.has_value()) << error;
  EXPECT_TRUE(latest->empty());
}

TEST(RvlaQueries, DamagedArchiveFailsEveryQuery) {
  Series series;
  build_series(11, series);
  if (::testing::Test::HasFatalFailure()) return;
  const analytics::RvlaPaths paths =
      analytics::RvlaPaths::in(series.dir.path.string());
  std::vector<std::uint8_t> data = read_bytes(paths.data);
  data[data.size() / 2] ^= 0x40;
  write_bytes(paths.data, data);

  std::string error;
  EXPECT_FALSE(
      analytics::latest_scores(series.dir.path.string(), &error).has_value());
  EXPECT_FALSE(error.empty());
}

// ---------- serve warm start ----------

TEST(RvlaServe, SeedFromArchiveMatchesSeedFromStore) {
  Series series;
  build_series(42, series);
  if (::testing::Test::HasFatalFailure()) return;

  serve::ScoreFeed from_store;
  from_store.seed_from_store(series.store);
  serve::ScoreFeed from_archive;
  ASSERT_TRUE(from_archive.seed_from_archive(series.dir.path.string()));

  const auto a = from_store.current();
  const auto b = from_archive.current();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->date, b->date);
  EXPECT_EQ(a->rounds_completed, b->rounds_completed);
  EXPECT_EQ(a->score_strs, b->score_strs);
  ASSERT_EQ(a->scores.size(), b->scores.size());
  for (std::size_t i = 0; i < a->scores.size(); ++i) {
    EXPECT_EQ(a->scores[i].asn, b->scores[i].asn);
    EXPECT_EQ(a->scores[i].score, b->scores[i].score);
  }
  ASSERT_NE(a->trajectory, nullptr);
  ASSERT_NE(b->trajectory, nullptr);
  ASSERT_EQ(a->trajectory->size(), b->trajectory->size());
  for (const auto& [asn, points] : *a->trajectory) {
    const auto it = b->trajectory->find(asn);
    ASSERT_NE(it, b->trajectory->end());
    ASSERT_EQ(points.size(), it->second.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
      EXPECT_EQ(points[i].date_days, it->second[i].date_days);
      EXPECT_EQ(points[i].score, it->second[i].score);
    }
  }
}

TEST(RvlaServe, SeedFromMissingOrEmptyArchiveFails) {
  TempDir dir;
  serve::ScoreFeed feed;
  EXPECT_FALSE(feed.seed_from_archive(dir.path.string() + "-nowhere"));
  std::string error;
  ASSERT_TRUE(RvlaWriter::create(dir.path.string(), {}, &error).has_value())
      << error;
  EXPECT_FALSE(feed.seed_from_archive(dir.path.string()));
  EXPECT_EQ(feed.current(), nullptr);
}

}  // namespace
