// RQP v1 codec: golden wire vectors, rejection rules, frame decoding,
// and the shared parse→serialize bit-identity fuzz battery — run over
// both the RQP messages and the raw net::headers encoders (the two
// byte-level codecs that claim canonical encodings; see
// tests/wire_fuzz.h for the property).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "net/headers.h"
#include "net/ipv4.h"
#include "serve/rqp.h"
#include "wire_fuzz.h"

using namespace rovista;
using namespace rovista::serve;
using rovista::net::Ipv4Address;
using rovista::net::Ipv4Header;
using rovista::net::TcpHeader;
using rovista::test::run_wire_fuzz;

namespace {

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> list) {
  std::vector<std::uint8_t> v;
  for (const int b : list) v.push_back(static_cast<std::uint8_t>(b));
  return v;
}

// ---------- golden wire vectors (docs/FORMATS.md section 3) ----------

TEST(RqpGolden, PingRequest) {
  Request request;
  request.opcode = Opcode::kPing;
  request.request_id = 7;
  EXPECT_EQ(encode_request(request), bytes_of({0x01, 0x01, 7, 0, 0, 0}));
}

TEST(RqpGolden, ScoreRequest) {
  Request request;
  request.opcode = Opcode::kScore;
  request.request_id = 0x01020304;
  request.asn = 0x0a0b0c0d;
  EXPECT_EQ(encode_request(request),
            bytes_of({0x01, 0x02, 0x04, 0x03, 0x02, 0x01, 0x0d, 0x0c, 0x0b,
                      0x0a}));
}

TEST(RqpGolden, ReachRequest) {
  Request request;
  request.opcode = Opcode::kReach;
  request.request_id = 1;
  request.asn = 2;
  request.dst = 0x7f000001;  // 127.0.0.1
  request.port = 179;
  EXPECT_EQ(encode_request(request),
            bytes_of({0x01, 0x04, 1, 0, 0, 0, 2, 0, 0, 0, 0x01, 0x00, 0x00,
                      0x7f, 0xb3, 0x00}));
}

TEST(RqpGolden, ErrorResponseCarriesNoBody) {
  Response response;
  response.opcode = Opcode::kScore;
  response.status = Status::kUnknownAs;
  response.request_id = 9;
  response.epoch_sequence = 3;
  response.round_date_days = 18985;  // 2021-12-24
  EXPECT_EQ(encode_response(response),
            bytes_of({0x01, 0x02, 0x02, 9, 0, 0, 0,          // hdr + id
                      3, 0, 0, 0, 0, 0, 0, 0,                // epoch seq
                      0x29, 0x4a, 0, 0, 0, 0, 0, 0}));       // date days
}

TEST(RqpGolden, ScoreResponse) {
  Response response;
  response.opcode = Opcode::kScore;
  response.status = Status::kOk;
  response.request_id = 1;
  response.epoch_sequence = 1;
  response.round_date_days = 1;
  response.asn = 64512;
  response.score = 0.5;
  response.vvp_count = 2;
  response.tnodes_consistent = 3;
  response.tnodes_outbound = 4;
  response.score_str = "0.50";
  EXPECT_EQ(encode_response(response),
            bytes_of({0x01, 0x02, 0x00, 1, 0, 0, 0,           // hdr + id
                      1, 0, 0, 0, 0, 0, 0, 0,                 // epoch seq
                      1, 0, 0, 0, 0, 0, 0, 0,                 // date days
                      0x00, 0xfc, 0x00, 0x00,                 // asn 64512
                      0, 0, 0, 0, 0, 0, 0xe0, 0x3f,           // 0.5 LE IEEE
                      2, 0, 3, 0, 4, 0,                       // counters
                      4, '0', '.', '5', '0'}));               // score string
}

// ---------- structural round trips ----------

TEST(RqpRoundTrip, EveryRequestOpcode) {
  for (const Opcode op : {Opcode::kPing, Opcode::kScore, Opcode::kTrajectory,
                          Opcode::kReach, Opcode::kAsns}) {
    Request request;
    request.opcode = op;
    request.request_id = 0xdeadbeef;
    request.asn = 65001;
    request.dst = 0x0a000001;
    request.port = 443;
    const auto parsed = parse_request(encode_request(request));
    ASSERT_TRUE(parsed.has_value()) << opcode_name(op);
    EXPECT_EQ(parsed->opcode, op);
    EXPECT_EQ(parsed->request_id, 0xdeadbeefu);
    EXPECT_EQ(encode_request(*parsed), encode_request(request))
        << opcode_name(op);
  }
}

TEST(RqpRoundTrip, TrajectoryResponse) {
  Response response;
  response.opcode = Opcode::kTrajectory;
  response.status = Status::kOk;
  response.request_id = 12;
  response.epoch_sequence = 4;
  response.round_date_days = 19000;
  response.asn = 65001;
  response.trajectory = {{18985, 0.25}, {19000, 0.75}};
  const auto parsed = parse_response(encode_response(response));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->trajectory.size(), 2u);
  EXPECT_EQ(parsed->trajectory[0].date_days, 18985);
  EXPECT_EQ(parsed->trajectory[0].score, 0.25);
  EXPECT_EQ(parsed->trajectory[1].score, 0.75);
}

TEST(RqpRoundTrip, ReachAndAsnsResponses) {
  Response reach;
  reach.opcode = Opcode::kReach;
  reach.status = Status::kOk;
  reach.request_id = 2;
  reach.reached = 1;
  reach.hops = {64500, 64501, 64502};
  const auto parsed_reach = parse_response(encode_response(reach));
  ASSERT_TRUE(parsed_reach.has_value());
  EXPECT_EQ(parsed_reach->reached, 1);
  EXPECT_EQ(parsed_reach->hops, reach.hops);

  Response asns;
  asns.opcode = Opcode::kAsns;
  asns.status = Status::kOk;
  asns.request_id = 3;
  asns.asns = {1, 2, 3, 4};
  const auto parsed_asns = parse_response(encode_response(asns));
  ASSERT_TRUE(parsed_asns.has_value());
  EXPECT_EQ(parsed_asns->asns, asns.asns);
}

// ---------- rejection rules ----------

TEST(RqpReject, BadVersionOpcodeAndTrailing) {
  Request request;
  request.opcode = Opcode::kPing;
  auto bytes = encode_request(request);
  auto wrong_version = bytes;
  wrong_version[0] = 2;
  EXPECT_FALSE(parse_request(wrong_version).has_value());
  auto wrong_opcode = bytes;
  wrong_opcode[1] = 0x99;
  EXPECT_FALSE(parse_request(wrong_opcode).has_value());
  auto none_opcode = bytes;
  none_opcode[1] = 0;  // NONE is never a valid request
  EXPECT_FALSE(parse_request(none_opcode).has_value());
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(parse_request(trailing).has_value());
  bytes.pop_back();
  EXPECT_FALSE(parse_request(bytes).has_value());
}

TEST(RqpReject, NoneResponseClaimingOk) {
  Response response;
  response.opcode = Opcode::kNone;
  response.status = Status::kBadRequest;
  const auto bytes = encode_response(response);
  EXPECT_TRUE(parse_response(bytes).has_value());
  auto ok = bytes;
  ok[2] = 0;  // status OK with opcode NONE: non-canonical
  EXPECT_FALSE(parse_response(ok).has_value());
}

TEST(RqpReject, ErrorResponseWithBody) {
  Response response;
  response.opcode = Opcode::kScore;
  response.status = Status::kNoData;
  auto bytes = encode_response(response);
  bytes.push_back(0x41);
  EXPECT_FALSE(parse_response(bytes).has_value());
}

TEST(RqpReject, CountMismatchAndBadReached) {
  Response asns;
  asns.opcode = Opcode::kAsns;
  asns.status = Status::kOk;
  asns.asns = {1, 2};
  auto bytes = encode_response(asns);
  // Bump the element count without providing the elements.
  bytes[23] = 3;
  EXPECT_FALSE(parse_response(bytes).has_value());

  Response reach;
  reach.opcode = Opcode::kReach;
  reach.status = Status::kOk;
  reach.reached = 1;
  auto rbytes = encode_response(reach);
  rbytes[23] = 2;  // `reached` must be 0 or 1
  EXPECT_FALSE(parse_response(rbytes).has_value());
}

// ---------- frame decoding ----------

TEST(FrameDecoder, ReassemblesSplitAndBatchedFrames) {
  std::vector<std::uint8_t> wire;
  append_frame(wire, bytes_of({1, 2, 3}));
  append_frame(wire, bytes_of({4}));
  append_frame(wire, bytes_of({5, 6}));

  FrameDecoder decoder(64);
  // Drip-feed one byte at a time: frames must reassemble exactly.
  std::vector<std::vector<std::uint8_t>> frames;
  for (const std::uint8_t b : wire) {
    decoder.append({&b, 1});
    for (;;) {
      auto frame = decoder.next();
      if (!frame.has_value()) break;
      frames.push_back(*frame);
    }
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(frames[0], bytes_of({1, 2, 3}));
  EXPECT_EQ(frames[1], bytes_of({4}));
  EXPECT_EQ(frames[2], bytes_of({5, 6}));
  EXPECT_FALSE(decoder.corrupt());
}

TEST(FrameDecoder, ZeroLengthAndOversizeFramesAreCorrupt) {
  FrameDecoder zero(64);
  zero.append(bytes_of({0, 0, 0, 0}));
  EXPECT_FALSE(zero.next().has_value());
  EXPECT_TRUE(zero.corrupt());

  FrameDecoder oversize(64);
  oversize.append(bytes_of({65, 0, 0, 0}));
  EXPECT_FALSE(oversize.next().has_value());
  EXPECT_TRUE(oversize.corrupt());

  // Exactly at the cap is fine.
  FrameDecoder at_cap(64);
  std::vector<std::uint8_t> wire;
  append_frame(wire, std::vector<std::uint8_t>(64, 0xaa));
  at_cap.append(wire);
  const auto frame = at_cap.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->size(), 64u);
  EXPECT_FALSE(at_cap.corrupt());
}

// ---------- the shared fuzz battery ----------

TEST(WireFuzz, RqpRequestsAreCanonical) {
  std::vector<std::vector<std::uint8_t>> seeds;
  for (const Opcode op : {Opcode::kPing, Opcode::kScore, Opcode::kTrajectory,
                          Opcode::kReach, Opcode::kAsns}) {
    Request request;
    request.opcode = op;
    request.request_id = 41;
    request.asn = 64512;
    request.dst = 0x7f000001;
    request.port = 80;
    seeds.push_back(encode_request(request));
  }
  const auto stats = run_wire_fuzz(
      "rqp-request", seeds,
      [](std::span<const std::uint8_t> in)
          -> std::optional<std::vector<std::uint8_t>> {
        const auto parsed = parse_request(in);
        if (!parsed.has_value()) return std::nullopt;
        return encode_request(*parsed);
      },
      /*rng_seed=*/0x5152u);
  // No checksum in RQP: plenty of mutants stay valid encodings, so the
  // battery really is exercising the accept-and-round-trip arm.
  EXPECT_GT(stats.accepted, 0u);
}

TEST(WireFuzz, RqpResponsesAreCanonical) {
  std::vector<std::vector<std::uint8_t>> seeds;
  for (const Status st : {Status::kOk, Status::kNoData, Status::kUnknownAs}) {
    for (const Opcode op : {Opcode::kPing, Opcode::kScore,
                            Opcode::kTrajectory, Opcode::kReach,
                            Opcode::kAsns}) {
      Response response;
      response.opcode = op;
      response.status = st;
      response.request_id = 11;
      response.epoch_sequence = 2;
      response.round_date_days = 18985;
      response.asn = 64512;
      response.score = 0.75;
      response.vvp_count = 2;
      response.tnodes_consistent = 5;
      response.tnodes_outbound = 1;
      response.score_str = "0.75";
      response.as_count = 20;
      response.rounds_completed = 3;
      response.world_digest = 0x12345678u;
      response.trajectory = {{18985, 0.5}, {19005, 0.75}};
      response.reached = 1;
      response.hops = {64500, 64501};
      response.asns = {1, 2, 3};
      seeds.push_back(encode_response(response));
    }
  }
  Response none;
  none.opcode = Opcode::kNone;
  none.status = Status::kBadRequest;
  seeds.push_back(encode_response(none));

  const auto stats = run_wire_fuzz(
      "rqp-response", seeds,
      [](std::span<const std::uint8_t> in)
          -> std::optional<std::vector<std::uint8_t>> {
        const auto parsed = parse_response(in);
        if (!parsed.has_value()) return std::nullopt;
        return encode_response(*parsed);
      },
      /*rng_seed=*/0x6263u);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(WireFuzz, Ipv4HeaderIsCanonical) {
  std::vector<std::vector<std::uint8_t>> seeds;
  for (int i = 0; i < 4; ++i) {
    Ipv4Header h;
    h.source =
        Ipv4Address::from_octets(10, 0, 0, static_cast<std::uint8_t>(i + 1));
    h.destination = Ipv4Address::from_octets(192, 0, 2, 7);
    h.identification = static_cast<std::uint16_t>(0x1000 + i);
    h.total_length = static_cast<std::uint16_t>(40 + i);
    h.ttl = static_cast<std::uint8_t>(64 - i);
    const auto bytes = h.serialize();
    seeds.emplace_back(bytes.begin(), bytes.end());
  }
  run_wire_fuzz(
      "ipv4-header", seeds,
      [](std::span<const std::uint8_t> in)
          -> std::optional<std::vector<std::uint8_t>> {
        const auto parsed = Ipv4Header::parse(in);
        if (!parsed.has_value()) return std::nullopt;
        // parse ignores bytes beyond kSize, so only exact-length inputs
        // can claim bit-identity; longer accepted inputs are prefixes.
        if (in.size() != Ipv4Header::kSize) return std::nullopt;
        const auto out = parsed->serialize();
        return std::vector<std::uint8_t>(out.begin(), out.end());
      },
      /*rng_seed=*/0x7374u);
}

TEST(WireFuzz, TcpHeaderIsCanonical) {
  const Ipv4Address src = Ipv4Address::from_octets(10, 0, 0, 1);
  const Ipv4Address dst = Ipv4Address::from_octets(10, 0, 0, 2);
  std::vector<std::vector<std::uint8_t>> seeds;
  for (int i = 0; i < 4; ++i) {
    TcpHeader t;
    t.source_port = static_cast<std::uint16_t>(1024 + i);
    t.destination_port = 80;
    t.sequence = 0xdead0000u + static_cast<std::uint32_t>(i);
    t.flags = net::TcpFlags::kSyn;
    const auto bytes = t.serialize(src, dst);
    seeds.emplace_back(bytes.begin(), bytes.end());
  }
  run_wire_fuzz(
      "tcp-header", seeds,
      [src, dst](std::span<const std::uint8_t> in)
          -> std::optional<std::vector<std::uint8_t>> {
        const auto parsed = TcpHeader::parse(in, src, dst);
        if (!parsed.has_value()) return std::nullopt;
        if (in.size() != TcpHeader::kSize) return std::nullopt;
        const auto out = parsed->serialize(src, dst);
        return std::vector<std::uint8_t>(out.begin(), out.end());
      },
      /*rng_seed=*/0x8586u);
}

TEST(WireFuzz, TcpHeaderRejectsNonzeroReservedBits) {
  const Ipv4Address src = Ipv4Address::from_octets(10, 0, 0, 1);
  const Ipv4Address dst = Ipv4Address::from_octets(10, 0, 0, 2);
  TcpHeader t;
  t.source_port = 1;
  auto bytes = t.serialize(src, dst);
  ASSERT_TRUE(TcpHeader::parse(bytes, src, dst).has_value());
  // The reserved low nibble of byte 12 is always serialized as zero;
  // setting any of its bits must fail the parse — serialize() could
  // never have produced such bytes.
  bytes[12] |= 0x01;
  EXPECT_FALSE(TcpHeader::parse(bytes, src, dst).has_value());
}

}  // namespace
