// Cross-seed stability: the pipeline's accuracy guarantees must hold for
// worlds it has never been tuned on, not just the default seed.
#include <gtest/gtest.h>

#include <memory>

#include "core/rovista.h"
#include "scenario/scenario.h"

namespace {

using namespace rovista;

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, PipelineAccuracyHoldsAcrossSeeds) {
  scenario::ScenarioParams params;
  params.seed = GetParam();
  params.topology.tier1_count = 5;
  params.topology.tier2_count = 18;
  params.topology.stub_count = 150;
  params.topology.tier3_count = 45;
  params.tnode_prefix_count = 5;
  params.measured_as_count = 18;
  params.hosts_per_measured_as = 4;
  scenario::Scenario s(std::move(params));
  s.advance_to(s.start() + 250);

  scan::MeasurementClient client_a(s.plane(), s.client_as_a(),
                                   s.client_addr_a());
  scan::MeasurementClient client_b(s.plane(), s.client_as_b(),
                                   s.client_addr_b());
  core::RovistaConfig config;
  config.scoring.min_vvps_per_as = 2;
  config.scoring.min_tnodes = 2;
  core::Rovista rovista(s.plane(), client_a, client_b, config);

  const auto view = s.collector().snapshot(s.routing());
  const auto tnodes = rovista.acquire_tnodes(
      view, s.current_vrps(), s.rov_reference_ases(s.current(), 10),
      s.non_rov_reference_ases(s.current(), 10));
  ASSERT_GE(tnodes.size(), 4u) << "seed " << GetParam();
  const auto vvps = rovista.acquire_vvps(s.vvp_candidates());
  ASSERT_GE(vvps.size(), 15u);

  const auto round = rovista.run_round(vvps, tnodes);
  std::size_t ok = 0;
  std::size_t wrong = 0;
  for (const auto& obs : round.observations) {
    if (obs.verdict == core::FilteringVerdict::kInconclusive ||
        obs.verdict == core::FilteringVerdict::kInboundFiltering) {
      continue;
    }
    const bool truth = s.plane().compute_path(obs.vvp_as, obs.tnode).delivered;
    const bool said = obs.verdict == core::FilteringVerdict::kNoFiltering;
    (truth == said ? ok : wrong)++;
  }
  ASSERT_GT(ok + wrong, 200u);
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(ok + wrong), 0.93)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404));

}  // namespace
