// Tests for src/scan: scanner, measurement client, vVP qualification
// (§4.2), tNode qualification (§4.1).
#include <gtest/gtest.h>

#include <memory>

#include "scan/measurement_client.h"
#include "scan/scanner.h"
#include "scan/tnode_discovery.h"
#include "scan/vvp_discovery.h"

namespace {

using namespace rovista::scan;
using rovista::bgp::AsPolicy;
using rovista::bgp::RoutingSystem;
using rovista::bgp::RovMode;
using rovista::dataplane::DataPlane;
using rovista::dataplane::HostConfig;
using rovista::dataplane::IpIdPolicy;
using rovista::net::Ipv4Address;
using rovista::net::Ipv4Prefix;
using rovista::rpki::VrpSet;
using rovista::topology::AsGraph;
using rovista::topology::Asn;

Ipv4Prefix pfx(const char* s) { return *Ipv4Prefix::parse(s); }
Ipv4Address addr(const char* s) { return *Ipv4Address::parse(s); }

// Star: provider 1 over {2 (client A), 3 (client B), 4 (targets)}.
struct ScanFixture {
  AsGraph graph;
  std::unique_ptr<RoutingSystem> routing;
  std::unique_ptr<DataPlane> plane;
  std::unique_ptr<MeasurementClient> client_a;
  std::unique_ptr<MeasurementClient> client_b;

  ScanFixture() {
    for (Asn a : {1u, 2u, 3u, 4u}) graph.add_as({a, ""});
    graph.add_p2c(1, 2);
    graph.add_p2c(1, 3);
    graph.add_p2c(1, 4);
    routing = std::make_unique<RoutingSystem>(graph);
    for (Asn a : {2u, 3u, 4u}) {
      routing->announce(
          {Ipv4Prefix(Ipv4Address(a << 24), 8), a});
    }
    plane = std::make_unique<DataPlane>(*routing, 777);
    client_a = std::make_unique<MeasurementClient>(*plane, 2,
                                                   addr("2.0.0.10"));
    client_b = std::make_unique<MeasurementClient>(*plane, 3,
                                                   addr("3.0.0.10"));
  }

  rovista::dataplane::Host* add_target(const char* address,
                                       IpIdPolicy policy,
                                       double background_rate = 1.0,
                                       std::vector<std::uint16_t> ports = {
                                           80}) {
    HostConfig config;
    config.address = addr(address);
    config.open_ports = std::move(ports);
    config.ipid_policy = policy;
    config.background.base_rate = background_rate;
    config.rto_seconds = 3.0;
    config.max_retransmits = 1;
    config.seed = config.address.value();
    return plane->add_host(4, config);
  }
};

// ---------- scanner ----------

TEST(Scanner, SynScanFindsOpenPorts) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 0.0, {80});
  fx.add_target("4.0.0.2", IpIdPolicy::kGlobal, 0.0, {8080});
  fx.add_target("4.0.0.3", IpIdPolicy::kGlobal, 0.0, {12345});  // unpopular
  const std::vector<Ipv4Address> addresses = {
      addr("4.0.0.1"), addr("4.0.0.2"), addr("4.0.0.3"), addr("4.0.0.4")};
  const auto hits = syn_scan(*fx.plane, 2, addr("2.0.0.10"), addresses,
                             kPopularPorts);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].address, addr("4.0.0.1"));
  EXPECT_EQ(hits[0].port, 80);
  EXPECT_EQ(hits[1].address, addr("4.0.0.2"));
  EXPECT_EQ(hits[1].port, 8080);
}

TEST(Scanner, SynAckScanFindsResponsiveHosts) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal);
  const std::vector<Ipv4Address> addresses = {addr("4.0.0.1"),
                                              addr("4.0.0.9")};
  const auto hits = synack_scan(*fx.plane, 2, addr("2.0.0.10"), addresses);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], addr("4.0.0.1"));
}

TEST(Scanner, UnreachableTargetNotHit) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal);
  // ROV-style: remove AS 2's route toward AS 4 by filtering.
  VrpSet vrps;
  vrps.add({pfx("4.0.0.0/8"), 8, 99});
  fx.routing->set_vrps(std::move(vrps));
  AsPolicy full;
  full.rov = RovMode::kFull;
  fx.routing->set_policy(2, full);
  const std::vector<Ipv4Address> addresses = {addr("4.0.0.1")};
  EXPECT_TRUE(
      syn_scan(*fx.plane, 2, addr("2.0.0.10"), addresses, kPopularPorts)
          .empty());
}

// ---------- measurement client ----------

TEST(MeasurementClient, ProbeElicitsRstWithIpId) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 0.0);
  fx.client_a->probe_at(1000, addr("4.0.0.1"), 80, 40001);
  fx.client_a->probe_at(500000, addr("4.0.0.1"), 80, 40002);
  fx.plane->sim().run();
  const auto samples = fx.client_a->rst_samples(addr("4.0.0.1"));
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(static_cast<std::uint16_t>(samples[1].ip_id - samples[0].ip_id),
            1);
  EXPECT_GT(samples[1].time, samples[0].time);
}

TEST(MeasurementClient, SpoofedSynTriggersSynAckToVictim) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 0.0);
  // A spoofs B: the SYN/ACK goes to B.
  fx.client_a->spoofed_syn_at(1000, fx.client_b->address(), addr("4.0.0.1"),
                              80, 51001);
  fx.plane->sim().run_until(rovista::dataplane::microseconds(0.5));
  const auto arrivals = fx.client_b->syn_ack_times(addr("4.0.0.1"));
  ASSERT_EQ(arrivals.size(), 1u);
  EXPECT_TRUE(fx.client_a->syn_ack_times(addr("4.0.0.1")).empty());
}

TEST(MeasurementClient, ClearResetsCapture) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 0.0);
  fx.client_a->probe_at(1000, addr("4.0.0.1"), 80, 40001);
  fx.plane->sim().run();
  EXPECT_FALSE(fx.client_a->captured().empty());
  fx.client_a->clear();
  EXPECT_TRUE(fx.client_a->captured().empty());
}

// ---------- vVP qualification (§4.2) ----------

TEST(VvpQualification, AcceptsGlobalCounter) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 2.0);
  const auto verdict = run_vvp_qualification(*fx.plane, *fx.client_a,
                                             addr("4.0.0.1"), 1000);
  EXPECT_TRUE(verdict.is_vvp);
  EXPECT_TRUE(verdict.monotone);
  EXPECT_GE(verdict.growth, 14u);
  EXPECT_EQ(verdict.samples, 10);
}

TEST(VvpQualification, RejectsPerDestinationCounter) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kPerDestination, 2.0);
  const auto verdict = run_vvp_qualification(*fx.plane, *fx.client_a,
                                             addr("4.0.0.1"), 1000);
  EXPECT_FALSE(verdict.is_vvp);
  // Monotone (the per-client counter still grows), but growth is too
  // small — the burst toward spoofed sources left no trace.
  EXPECT_TRUE(verdict.monotone);
  EXPECT_LT(verdict.growth, 14u);
}

TEST(VvpQualification, RejectsRandomIpId) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kRandom, 2.0);
  const auto verdict = run_vvp_qualification(*fx.plane, *fx.client_a,
                                             addr("4.0.0.1"), 1000);
  EXPECT_FALSE(verdict.is_vvp);
}

TEST(VvpQualification, RejectsZeroIpId) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kZero, 2.0);
  const auto verdict = run_vvp_qualification(*fx.plane, *fx.client_a,
                                             addr("4.0.0.1"), 1000);
  EXPECT_FALSE(verdict.is_vvp);
  EXPECT_FALSE(verdict.monotone);
}

TEST(VvpQualification, RejectsUnreachableHost) {
  ScanFixture fx;
  const auto verdict = run_vvp_qualification(*fx.plane, *fx.client_a,
                                             addr("4.0.0.99"), 1000);
  EXPECT_FALSE(verdict.is_vvp);
  EXPECT_EQ(verdict.samples, 0);
}

TEST(VvpQualification, EstimatesBackgroundRate) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 20.0);
  const auto verdict = run_vvp_qualification(*fx.plane, *fx.client_a,
                                             addr("4.0.0.1"), 1000);
  EXPECT_TRUE(verdict.is_vvp);
  EXPECT_NEAR(verdict.est_background_rate, 20.0, 8.0);
}

TEST(VvpQualification, DiscoverFiltersMixedPopulation) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kGlobal, 1.0);
  fx.add_target("4.0.0.2", IpIdPolicy::kPerDestination, 1.0);
  fx.add_target("4.0.0.3", IpIdPolicy::kRandom, 1.0);
  fx.add_target("4.0.0.4", IpIdPolicy::kGlobal, 3.0);
  const std::vector<Ipv4Address> candidates = {
      addr("4.0.0.1"), addr("4.0.0.2"), addr("4.0.0.3"), addr("4.0.0.4")};
  const auto vvps = discover_vvps(*fx.plane, *fx.client_a, candidates);
  ASSERT_EQ(vvps.size(), 2u);
  EXPECT_EQ(vvps[0].address, addr("4.0.0.1"));
  EXPECT_EQ(vvps[1].address, addr("4.0.0.4"));
  EXPECT_EQ(vvps[0].asn, 4u);
}

// ---------- tNode selection and qualification (§4.1) ----------

TEST(TnodeSelection, ExclusivelyInvalidOnly) {
  rovista::bgp::CollectorSnapshot snap;
  const auto add = [&](const char* prefix, Asn origin) {
    rovista::bgp::CollectorEntry e;
    e.prefix = pfx(prefix);
    e.as_path = {1, origin};
    e.peer = 1;
    snap.entries.push_back(e);
  };
  add("10.1.0.0/16", 100);  // invalid (ROA says 200)
  add("10.2.0.0/16", 200);  // valid
  add("10.3.0.0/16", 100);  // MOAS: invalid origin...
  add("10.3.0.0/16", 300);  // ...and valid origin

  VrpSet vrps;
  vrps.add({pfx("10.1.0.0/16"), 16, 200});
  vrps.add({pfx("10.2.0.0/16"), 16, 200});
  vrps.add({pfx("10.3.0.0/16"), 16, 300});

  const auto test_prefixes = select_test_prefixes(snap, vrps);
  ASSERT_EQ(test_prefixes.size(), 1u);
  EXPECT_EQ(test_prefixes[0], pfx("10.1.0.0/16"));
}

TEST(TnodeQualification, WellBehavedHostPasses) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kPerDestination, 0.0);
  const auto b = qualify_tnode(*fx.plane, *fx.client_a, *fx.client_b,
                               addr("4.0.0.1"), 80);
  EXPECT_TRUE(b.responds_to_spoof);
  EXPECT_TRUE(b.implements_rto);
  EXPECT_TRUE(b.stops_after_rst);
  EXPECT_TRUE(b.qualified());
}

TEST(TnodeQualification, NoRtoHostFailsConditionB) {
  ScanFixture fx;
  HostConfig config;
  config.address = addr("4.0.0.1");
  config.open_ports = {80};
  config.implements_rto = false;
  config.seed = 5;
  fx.plane->add_host(4, config);
  const auto b = qualify_tnode(*fx.plane, *fx.client_a, *fx.client_b,
                               addr("4.0.0.1"), 80);
  EXPECT_TRUE(b.responds_to_spoof);
  EXPECT_FALSE(b.implements_rto);
  EXPECT_FALSE(b.qualified());
}

TEST(TnodeQualification, RetransmitAfterRstFailsConditionC) {
  ScanFixture fx;
  HostConfig config;
  config.address = addr("4.0.0.1");
  config.open_ports = {80};
  config.rto_seconds = 3.0;
  config.max_retransmits = 1;
  config.retransmit_after_rst = true;
  config.seed = 5;
  fx.plane->add_host(4, config);
  const auto b = qualify_tnode(*fx.plane, *fx.client_a, *fx.client_b,
                               addr("4.0.0.1"), 80);
  EXPECT_TRUE(b.responds_to_spoof);
  EXPECT_TRUE(b.implements_rto);
  EXPECT_FALSE(b.stops_after_rst);
  EXPECT_FALSE(b.qualified());
}

TEST(TnodeQualification, TooSlowRtoFailsWindow) {
  ScanFixture fx;
  HostConfig config;
  config.address = addr("4.0.0.1");
  config.open_ports = {80};
  config.rto_seconds = 6.0;  // outside the paper's 1–3 s expectation
  config.max_retransmits = 1;
  config.seed = 5;
  fx.plane->add_host(4, config);
  const auto b = qualify_tnode(*fx.plane, *fx.client_a, *fx.client_b,
                               addr("4.0.0.1"), 80);
  EXPECT_FALSE(b.implements_rto);
}

TEST(TnodeFiltering, DropsNodesReachableFromRovRefs) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kPerDestination, 0.0);
  std::vector<Tnode> tnodes = {{addr("4.0.0.1"), 80, pfx("4.0.0.0/8"), 4}};
  // AS 2 poses as a "confirmed ROV" reference — but it can reach the
  // node, so the node must be discarded as a false tNode.
  const std::vector<Asn> rov_refs = {2};
  const std::vector<Asn> non_rov_refs = {3};
  const auto kept = filter_false_tnodes(*fx.plane, tnodes, rov_refs,
                                        non_rov_refs);
  EXPECT_TRUE(kept.empty());
}

TEST(TnodeFiltering, KeepsNodesMatchingReferences) {
  ScanFixture fx;
  fx.add_target("4.0.0.1", IpIdPolicy::kPerDestination, 0.0);
  // Make AS 2 genuinely ROV (no route to the invalid prefix).
  VrpSet vrps;
  vrps.add({pfx("4.0.0.0/8"), 8, 99});
  fx.routing->set_vrps(std::move(vrps));
  AsPolicy full;
  full.rov = RovMode::kFull;
  fx.routing->set_policy(2, full);

  std::vector<Tnode> tnodes = {{addr("4.0.0.1"), 80, pfx("4.0.0.0/8"), 4}};
  const std::vector<Asn> rov_refs = {2};
  const std::vector<Asn> non_rov_refs = {3};
  const auto kept = filter_false_tnodes(*fx.plane, tnodes, rov_refs,
                                        non_rov_refs);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_EQ(kept[0].address, addr("4.0.0.1"));
}

}  // namespace
