// Golden regression test: the standard fixture's per-AS scores are
// snapshotted in tests/data/golden_round_scores.csv. Any change to the
// measurement pipeline that shifts a verdict or score — however subtle —
// fails this diff, so performance work cannot silently change results.
//
// Regenerate intentionally with:
//   ROVISTA_REGEN_GOLDEN=1 ./test_golden_round
// and commit the diff together with an explanation of why verdicts moved.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/parallel_round.h"
#include "round_fixture.h"
#include "snapshot/world_source.h"

#ifndef ROVISTA_TEST_DATA_DIR
#error "ROVISTA_TEST_DATA_DIR must be defined by the build"
#endif

namespace {

using namespace rovista;

std::string render_scores(const std::vector<core::AsScore>& scores) {
  std::string out =
      "asn,score,vvp_count,tnodes_consistent,tnodes_outbound,"
      "tnodes_inconsistent\n";
  char line[160];
  for (const core::AsScore& s : scores) {
    // %.17g round-trips doubles exactly: the diff is bit-level.
    std::snprintf(line, sizeof(line), "%u,%.17g,%d,%d,%d,%d\n", s.asn,
                  s.score, s.vvp_count, s.tnodes_consistent,
                  s.tnodes_outbound, s.tnodes_inconsistent);
    out += line;
  }
  return out;
}

TEST(GoldenRound, ScoresMatchCheckedInGolden) {
  const scenario::ScenarioParams params = testfx::round_params();
  const util::Date date = testfx::round_date(params);
  const core::RovistaConfig config = testfx::round_config();
  const testfx::RoundInputs inputs =
      testfx::acquire_round_inputs(params, date, config);
  ASSERT_FALSE(inputs.vvps.empty());
  ASSERT_FALSE(inputs.tnodes.empty());

  core::ParallelRoundConfig round_config;
  round_config.experiment = config.experiment;
  round_config.scoring = config.scoring;
  round_config.num_threads = 0;  // serial reference engine
  const core::ParallelRoundRunner runner(
      scenario::make_replica_factory(params, date), round_config);
  const core::MeasurementRound round =
      runner.run(inputs.vvps, inputs.tnodes);
  ASSERT_FALSE(round.scores.empty());
  const std::string got = render_scores(round.scores);

  const std::string path =
      std::string(ROVISTA_TEST_DATA_DIR) + "/golden_round_scores.csv";
  if (std::getenv("ROVISTA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with ROVISTA_REGEN_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "measurement verdicts changed; if intentional, regenerate with "
         "ROVISTA_REGEN_GOLDEN=1 and explain the change in the commit";
}

// Equivalence axis: the epoch-snapshot engine must reproduce the very
// same golden CSV bytes the replica engine does — one assertion per
// engine against one checked-in file, so neither can drift alone.
TEST(GoldenRound, SnapshotEngineMatchesSameGolden) {
  const scenario::ScenarioParams params = testfx::round_params();
  const util::Date date = testfx::round_date(params);
  const core::RovistaConfig config = testfx::round_config();
  const testfx::RoundInputs inputs =
      testfx::acquire_round_inputs(params, date, config);

  core::ParallelRoundConfig round_config;
  round_config.experiment = config.experiment;
  round_config.scoring = config.scoring;
  round_config.num_threads = 4;
  const core::ParallelRoundRunner runner(
      snapshot::make_measurement_factory(params, date,
                                         snapshot::EngineMode::kSnapshot),
      round_config);
  const core::MeasurementRound round =
      runner.run(inputs.vvps, inputs.tnodes);
  ASSERT_FALSE(round.scores.empty());
  const std::string got = render_scores(round.scores);

  const std::string path =
      std::string(ROVISTA_TEST_DATA_DIR) + "/golden_round_scores.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "snapshot engine diverged from the golden scores the replica "
         "engine produces";
}

}  // namespace
