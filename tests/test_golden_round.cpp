// Golden regression test: the standard fixture's per-AS scores are
// snapshotted in tests/data/golden_round_scores.csv. Any change to the
// measurement pipeline that shifts a verdict or score — however subtle —
// fails this diff, so performance work cannot silently change results.
//
// Regenerate intentionally with:
//   ROVISTA_REGEN_GOLDEN=1 ./test_golden_round
// and commit the diff together with an explanation of why verdicts moved.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <atomic>
#include <memory>

#include "core/parallel_round.h"
#include "round_fixture.h"
#include "snapshot/world_source.h"

#ifndef ROVISTA_TEST_DATA_DIR
#error "ROVISTA_TEST_DATA_DIR must be defined by the build"
#endif

namespace {

using namespace rovista;

std::string render_scores(const std::vector<core::AsScore>& scores) {
  std::string out =
      "asn,score,vvp_count,tnodes_consistent,tnodes_outbound,"
      "tnodes_inconsistent\n";
  char line[160];
  for (const core::AsScore& s : scores) {
    // %.17g round-trips doubles exactly: the diff is bit-level.
    std::snprintf(line, sizeof(line), "%u,%.17g,%d,%d,%d,%d\n", s.asn,
                  s.score, s.vvp_count, s.tnodes_consistent,
                  s.tnodes_outbound, s.tnodes_inconsistent);
    out += line;
  }
  return out;
}

TEST(GoldenRound, ScoresMatchCheckedInGolden) {
  const scenario::ScenarioParams params = testfx::round_params();
  const util::Date date = testfx::round_date(params);
  const core::RovistaConfig config = testfx::round_config();
  const testfx::RoundInputs inputs =
      testfx::acquire_round_inputs(params, date, config);
  ASSERT_FALSE(inputs.vvps.empty());
  ASSERT_FALSE(inputs.tnodes.empty());

  core::ParallelRoundConfig round_config;
  round_config.experiment = config.experiment;
  round_config.scoring = config.scoring;
  round_config.num_threads = 0;  // serial reference engine
  const core::ParallelRoundRunner runner(
      scenario::make_replica_factory(params, date), round_config);
  const core::MeasurementRound round =
      runner.run(inputs.vvps, inputs.tnodes);
  ASSERT_FALSE(round.scores.empty());
  const std::string got = render_scores(round.scores);

  const std::string path =
      std::string(ROVISTA_TEST_DATA_DIR) + "/golden_round_scores.csv";
  if (std::getenv("ROVISTA_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << got;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path
                  << " — run with ROVISTA_REGEN_GOLDEN=1 to create it";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "measurement verdicts changed; if intentional, regenerate with "
         "ROVISTA_REGEN_GOLDEN=1 and explain the change in the commit";
}

// Equivalence axis: the epoch-snapshot engine must reproduce the very
// same golden CSV bytes the replica engine does — one assertion per
// engine against one checked-in file, so neither can drift alone.
TEST(GoldenRound, SnapshotEngineMatchesSameGolden) {
  const scenario::ScenarioParams params = testfx::round_params();
  const util::Date date = testfx::round_date(params);
  const core::RovistaConfig config = testfx::round_config();
  const testfx::RoundInputs inputs =
      testfx::acquire_round_inputs(params, date, config);

  core::ParallelRoundConfig round_config;
  round_config.experiment = config.experiment;
  round_config.scoring = config.scoring;
  round_config.num_threads = 4;
  const core::ParallelRoundRunner runner(
      snapshot::make_measurement_factory(params, date,
                                         snapshot::EngineMode::kSnapshot),
      round_config);
  const core::MeasurementRound round =
      runner.run(inputs.vvps, inputs.tnodes);
  ASSERT_FALSE(round.scores.empty());
  const std::string got = render_scores(round.scores);

  const std::string path =
      std::string(ROVISTA_TEST_DATA_DIR) + "/golden_round_scores.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "snapshot engine diverged from the golden scores the replica "
         "engine produces";
}

// A ScenarioReplica-alike that forces the rank-flattened propagation
// engine before any route is demanded, and reports how many prefixes
// the flat path certified when it dies (proof the axis was not vacuous).
class FlatReplica final : public core::MeasurementReplica {
 public:
  FlatReplica(const scenario::ScenarioParams& params, util::Date date,
              std::shared_ptr<std::atomic<std::uint64_t>> certified)
      : scenario_(params), certified_(std::move(certified)) {
    scenario_.routing().set_propagation_engine(bgp::PropagationEngine::kFlat);
    scenario_.advance_to(date);
    client_a_ = std::make_unique<scan::MeasurementClient>(
        scenario_.plane(), scenario_.client_as_a(), scenario_.client_addr_a());
    client_b_ = std::make_unique<scan::MeasurementClient>(
        scenario_.plane(), scenario_.client_as_b(), scenario_.client_addr_b());
  }

  ~FlatReplica() override {
    *certified_ += scenario_.routing().flat_certified_count();
  }

  dataplane::DataPlane& plane() override { return scenario_.plane(); }
  scan::MeasurementClient& client() override { return *client_a_; }

 private:
  scenario::Scenario scenario_;
  std::shared_ptr<std::atomic<std::uint64_t>> certified_;
  std::unique_ptr<scan::MeasurementClient> client_a_;
  std::unique_ptr<scan::MeasurementClient> client_b_;
};

// Third axis: forcing the flat engine end to end — through discovery
// AND measurement — must reproduce the same golden CSV bytes. With the
// fixture's world below kFlatAutoThreshold, kAuto never exercises the
// flat path here; forcing it pins the engines' equivalence at the
// score level, not just the RouteMap level.
TEST(GoldenRound, FlatEngineMatchesSameGolden) {
  const scenario::ScenarioParams params = testfx::round_params();
  const util::Date date = testfx::round_date(params);
  const core::RovistaConfig config = testfx::round_config();

  // Discovery on a throwaway flat-forced world (mirrors
  // testfx::acquire_round_inputs).
  scenario::Scenario s(params);
  s.routing().set_propagation_engine(bgp::PropagationEngine::kFlat);
  s.advance_to(date);
  scan::MeasurementClient client_a(s.plane(), s.client_as_a(),
                                   s.client_addr_a());
  scan::MeasurementClient client_b(s.plane(), s.client_as_b(),
                                   s.client_addr_b());
  core::Rovista rovista(s.plane(), client_a, client_b, config);
  const auto snapshot = s.collector().snapshot(s.routing());
  const std::vector<scan::Tnode> tnodes = rovista.acquire_tnodes(
      snapshot, s.current_vrps(), s.rov_reference_ases(s.current(), 10),
      s.non_rov_reference_ases(s.current(), 10));
  const std::vector<scan::Vvp> vvps = rovista.acquire_vvps(s.vvp_candidates());
  ASSERT_FALSE(vvps.empty());
  ASSERT_FALSE(tnodes.empty());
  EXPECT_GT(s.routing().flat_certified_count(), 0u);
  EXPECT_EQ(s.routing().flat_fallback_count(), 0u);

  const auto certified = std::make_shared<std::atomic<std::uint64_t>>(0);
  core::ParallelRoundConfig round_config;
  round_config.experiment = config.experiment;
  round_config.scoring = config.scoring;
  round_config.num_threads = 0;
  const core::ParallelRoundRunner runner(
      [params, date, certified] {
        return std::unique_ptr<core::MeasurementReplica>(
            std::make_unique<FlatReplica>(params, date, certified));
      },
      round_config);
  const core::MeasurementRound round = runner.run(vvps, tnodes);
  ASSERT_FALSE(round.scores.empty());
  const std::string got = render_scores(round.scores);

  const std::string path =
      std::string(ROVISTA_TEST_DATA_DIR) + "/golden_round_scores.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in) << "missing golden file " << path;
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(want.str(), got)
      << "flat propagation engine diverged from the golden scores the "
         "fixed-point engine produces";
  EXPECT_GT(certified->load(), 0u);
}

}  // namespace
