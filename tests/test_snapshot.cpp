// Epoch-snapshot lifecycle and immutability properties
// (snapshot/epoch_world.h, snapshot/epoch_publisher.h):
//
//   * a frozen RoutingSystem refuses every mutation and answers every
//     warmed query (the reader-safety contract),
//   * an epoch's digest at pin time equals its digest at release, no
//     matter how much the build world evolved or how many epochs were
//     published in between (immutability),
//   * no epoch is freed while pinned, and the live-epoch chain stays
//     bounded — publishing N times with no readers leaves exactly one
//     epoch alive (grace period / reclamation).
#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "round_fixture.h"
#include "snapshot/epoch_publisher.h"
#include "snapshot/world_source.h"
#include "util/logging.h"

namespace {

using namespace rovista;

scenario::ScenarioParams small_params() { return testfx::round_params(); }

TEST(SnapshotFreeze, FrozenRoutingRefusesEveryMutator) {
  scenario::Scenario world(small_params());
  world.advance_to(world.start() + 60);

  topology::AsGraph graph_copy(world.graph());
  bgp::RoutingSystem frozen(world.routing(), graph_copy);
  EXPECT_FALSE(frozen.frozen());
  frozen.freeze();
  EXPECT_TRUE(frozen.frozen());
  frozen.freeze();  // idempotent
  EXPECT_TRUE(frozen.frozen());

  EXPECT_THROW(frozen.set_policy(1, bgp::AsPolicy{}), std::logic_error);
  EXPECT_THROW(frozen.set_vrps(rpki::VrpSet{}), std::logic_error);
  EXPECT_THROW(frozen.apply_vrp_delta(rpki::VrpSet{}, {}, {}, {}),
               std::logic_error);
  EXPECT_THROW(frozen.invalidate_all(), std::logic_error);
  const net::Ipv4Prefix some = frozen.all_prefixes().front();
  EXPECT_THROW(frozen.invalidate_prefix(some), std::logic_error);
  bgp::OriginAnnouncement ann;
  ann.prefix = some;
  ann.origin = 1;
  EXPECT_THROW(frozen.announce(ann), std::logic_error);
  EXPECT_THROW(frozen.withdraw(ann), std::logic_error);
  std::vector<rpki::VrpSet> views(1);
  EXPECT_THROW(frozen.set_effective_views(std::move(views), {{1, 1}}),
               std::logic_error);
}

TEST(SnapshotFreeze, FrozenRoutingAnswersEveryWarmedQuery) {
  scenario::Scenario world(small_params());
  world.advance_to(world.start() + 60);

  topology::AsGraph graph_copy(world.graph());
  bgp::RoutingSystem frozen(world.routing(), graph_copy);
  frozen.freeze();

  // Every announced prefix was warmed: routes_for is a pure cache hit
  // and agrees with the (mutable) source world.
  for (const net::Ipv4Prefix& prefix : frozen.all_prefixes()) {
    const bgp::RouteMap& got = frozen.routes_for(prefix);
    const bgp::RouteMap& want = world.routing().routes_for(prefix);
    ASSERT_EQ(got.size(), want.size()) << prefix.to_string();
    for (const auto& [asn, entry] : want) {
      const auto it = got.find(asn);
      ASSERT_NE(it, got.end());
      EXPECT_EQ(it->second.next_hop, entry.next_hop);
      EXPECT_EQ(it->second.origin, entry.origin);
      EXPECT_EQ(it->second.validity, entry.validity);
      EXPECT_EQ(it->second.path_len, entry.path_len);
    }
  }
}

TEST(SnapshotLifecycle, PublishPinReleaseAndSequence) {
  snapshot::EpochPublisher pub(small_params());
  EXPECT_EQ(pub.published_epochs(), 0u);
  EXPECT_FALSE(pub.current());

  pub.advance_to(pub.world().start() + 30);
  snapshot::EpochRef e1 = pub.publish();
  ASSERT_TRUE(e1);
  EXPECT_EQ(e1->sequence(), 1u);
  EXPECT_EQ(pub.published_epochs(), 1u);
  EXPECT_EQ(pub.live_epochs(), 1);
  EXPECT_EQ(e1->pins(), 1);

  // Copying a ref adds a pin; dropping it removes one.
  {
    snapshot::EpochRef extra = e1;
    EXPECT_EQ(e1->pins(), 2);
  }
  EXPECT_EQ(e1->pins(), 1);

  // current() pins the same epoch until the next publish.
  snapshot::EpochRef cur = pub.current();
  ASSERT_TRUE(cur);
  EXPECT_EQ(cur->sequence(), 1u);
  EXPECT_EQ(e1->pins(), 2);
  cur.reset();
  EXPECT_EQ(e1->pins(), 1);
}

TEST(SnapshotLifecycle, NoEpochFreedWhilePinnedAndChainBounded) {
  snapshot::EpochPublisher pub(small_params());
  const util::Date start = pub.world().start();

  pub.advance_to(start + 30);
  snapshot::EpochRef pinned = pub.publish();
  const std::uint64_t pinned_digest = pinned->digest();

  // Three more publishes while the first epoch stays pinned: it must
  // survive (live count = pinned + current), fully readable.
  for (int i = 1; i <= 3; ++i) {
    pub.advance_to(start + 30 + 20 * i);
    pub.publish();  // returned pin dropped immediately
  }
  EXPECT_EQ(pub.published_epochs(), 4u);
  EXPECT_EQ(pub.live_epochs(), 2);  // the pinned one + the current one
  EXPECT_EQ(pinned->sequence(), 1u);
  EXPECT_EQ(pinned->recompute_digest(), pinned_digest);

  // Releasing the pin reclaims the old epoch immediately (grace period
  // is exactly the pin lifetime).
  pinned.reset();
  EXPECT_EQ(pub.live_epochs(), 1);

  // Unpinned publishes never accumulate: the chain stays at length 1.
  for (int i = 4; i <= 9; ++i) {
    pub.advance_to(start + 30 + 20 * i);
    pub.publish();
    EXPECT_EQ(pub.live_epochs(), 1);
  }
}

namespace {
std::string drain_log(std::FILE* sink) {
  std::rewind(sink);
  std::string text;
  char buf[512];
  while (std::fgets(buf, sizeof buf, sink) != nullptr) text += buf;
  return text;
}
}  // namespace

TEST(SnapshotLifecycle, PinLeakDiagnosticNamesStuckEpochs) {
  snapshot::EpochPublisher pub(small_params());
  const util::Date start = pub.world().start();
  EXPECT_EQ(pub.live_epoch_warn_depth(), 0);  // disabled by default
  pub.set_live_epoch_warn_depth(2);

  pub.advance_to(start + 30);
  snapshot::EpochRef leak1 = pub.publish();
  pub.advance_to(start + 50);
  snapshot::EpochRef leak2 = pub.publish();

  // Two leaked pins + the new current epoch: the third publish crosses
  // the depth-2 threshold and must name the two stuck epochs — with
  // digest and pin count — but never the epoch it just installed.
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  util::set_log_sink(sink);
  pub.advance_to(start + 70);
  snapshot::EpochRef cur = pub.publish();
  util::set_log_sink(nullptr);

  const std::string log = drain_log(sink);
  EXPECT_NE(log.find("epoch chain depth 3 exceeds 2"), std::string::npos)
      << log;
  EXPECT_NE(log.find("stuck epoch seq=1 digest=" +
                     std::to_string(leak1->digest()) + " pins=1"),
            std::string::npos)
      << log;
  EXPECT_NE(log.find("stuck epoch seq=2 digest=" +
                     std::to_string(leak2->digest()) + " pins=1"),
            std::string::npos)
      << log;
  EXPECT_EQ(log.find("stuck epoch seq=3"), std::string::npos) << log;

  // Releasing the leaked pins brings the chain back under the
  // threshold: the next publish is silent.
  leak1.reset();
  leak2.reset();
  std::FILE* quiet_sink = std::tmpfile();
  ASSERT_NE(quiet_sink, nullptr);
  util::set_log_sink(quiet_sink);
  pub.advance_to(start + 90);
  cur = pub.publish();
  util::set_log_sink(nullptr);
  EXPECT_EQ(drain_log(quiet_sink), "");
  std::fclose(quiet_sink);

  // Depth 0 disables the check even with a deep chain.
  pub.set_live_epoch_warn_depth(0);
  snapshot::EpochRef held = cur;
  std::FILE* off_sink = std::tmpfile();
  ASSERT_NE(off_sink, nullptr);
  util::set_log_sink(off_sink);
  pub.advance_to(start + 110);
  pub.publish();
  util::set_log_sink(nullptr);
  EXPECT_EQ(pub.live_epochs(), 2);  // held + current — over any depth
  EXPECT_EQ(drain_log(off_sink), "");
  std::fclose(off_sink);
  std::fclose(sink);
}

TEST(SnapshotImmutability, DigestAtPinEqualsDigestAtRelease) {
  snapshot::EpochPublisher pub(small_params());
  const util::Date start = pub.world().start();
  pub.advance_to(start + 30);
  snapshot::EpochRef epoch = pub.publish();

  const std::uint64_t at_pin = epoch->digest();
  EXPECT_EQ(epoch->recompute_digest(), at_pin);

  // Evolve the build world hard — 200 days of policy events, churn and
  // relying-party reruns — and publish over it repeatedly. The pinned
  // epoch is a deep frozen copy; nothing may leak through.
  std::uint64_t last_digest = at_pin;
  bool changed = false;
  for (int i = 1; i <= 4; ++i) {
    pub.advance_to(start + 30 + 50 * i);
    snapshot::EpochRef next = pub.publish();
    EXPECT_EQ(epoch->recompute_digest(), at_pin);
    if (next->digest() != last_digest) changed = true;
    last_digest = next->digest();
  }
  // Digest sensitivity: 200 days of ROA/ROV churn must move the digest
  // at least once — otherwise the immutability check above is vacuous.
  EXPECT_TRUE(changed);
  EXPECT_EQ(epoch->recompute_digest(), at_pin);  // at release
}

TEST(SnapshotReader, ReadersShareRoutingButOwnHostState) {
  snapshot::EpochPublisher pub(small_params());
  pub.advance_to(pub.world().start() + 30);
  snapshot::EpochRef epoch = pub.publish();

  auto r1 = snapshot::make_reader(epoch);
  auto r2 = snapshot::make_reader(epoch);
  EXPECT_EQ(epoch->pins(), 3);  // our ref + one per reader

  // Same frozen routing underneath...
  EXPECT_EQ(&r1->plane().routing(), &r2->plane().routing());
  EXPECT_TRUE(r1->plane().routing().frozen());
  // ...but private planes and clients.
  EXPECT_NE(&r1->plane(), &r2->plane());
  EXPECT_NE(&r1->client(), &r2->client());

  // Probing through one reader advances only that reader's world.
  const net::Ipv4Address target = epoch->client_addr_b();
  r1->client_a().probe_at(1000, target, 80, 40001);
  r1->plane().sim().run();
  EXPECT_GT(r1->plane().packets_sent(), 0u);
  EXPECT_EQ(r2->plane().packets_sent(), 0u);
  EXPECT_EQ(r2->plane().sim().now(), 0u);

  r1.reset();
  r2.reset();
  EXPECT_EQ(epoch->pins(), 1);
}

TEST(SnapshotFactory, CentralFactoryServesBothEngines) {
  const scenario::ScenarioParams params = small_params();
  const util::Date date = testfx::round_date(params);
  for (const auto mode :
       {snapshot::EngineMode::kSnapshot, snapshot::EngineMode::kReplica}) {
    const core::ReplicaFactory factory =
        snapshot::make_measurement_factory(params, date, mode);
    const auto replica = factory();
    ASSERT_NE(replica, nullptr) << snapshot::engine_mode_name(mode);
    // A usable measurement world: the client can reach the plane.
    EXPECT_GT(replica->plane().routing().all_prefixes().size(), 0u);
  }
}

}  // namespace
