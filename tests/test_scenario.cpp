// Tests for src/scenario: construction invariants, the timeline, case-
// study fixtures, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "scenario/scenario.h"

namespace {

using namespace rovista::scenario;
using rovista::bgp::RovMode;
using rovista::rpki::RouteValidity;
using rovista::util::Date;

ScenarioParams small_params(std::uint64_t seed = 11) {
  ScenarioParams p;
  p.seed = seed;
  p.topology.tier1_count = 5;
  p.topology.tier2_count = 16;
  p.topology.tier3_count = 40;
  p.topology.stub_count = 120;
  p.tnode_prefix_count = 5;
  p.moas_invalid_count = 5;
  p.surge_invalid_count = 10;
  p.measured_as_count = 30;
  p.hosts_per_measured_as = 3;
  p.collector_peer_count = 20;
  return p;
}

class ScenarioTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { shared_ = new Scenario(small_params()); }
  static void TearDownTestSuite() {
    delete shared_;
    shared_ = nullptr;
  }
  static Scenario* shared_;
};

Scenario* ScenarioTest::shared_ = nullptr;

TEST_F(ScenarioTest, StartsAtWindowStart) {
  EXPECT_EQ(shared_->current(), shared_->start());
  EXPECT_LT(shared_->start(), shared_->end());
}

TEST_F(ScenarioTest, ClientsExistAndAreDistinct) {
  EXPECT_NE(shared_->client_as_a(), 0u);
  EXPECT_NE(shared_->client_as_b(), 0u);
  EXPECT_NE(shared_->client_as_a(), shared_->client_as_b());
  EXPECT_TRUE(shared_->graph().contains(shared_->client_as_a()));
  // Clients never deploy ROV.
  EXPECT_EQ(shared_->true_mode(shared_->client_as_a(), shared_->end()),
            RovMode::kNone);
}

TEST_F(ScenarioTest, TnodePrefixesAreExclusivelyInvalid) {
  for (const auto& [prefix, origin] : shared_->tnode_prefixes()) {
    EXPECT_EQ(shared_->current_vrps().validate(prefix, origin),
              RouteValidity::kInvalid)
        << prefix.to_string();
    // Only the wrong origin announces it.
    const auto origins = shared_->routing().origins_of(prefix);
    ASSERT_EQ(origins.size(), 1u);
    EXPECT_EQ(origins[0], origin);
  }
}

TEST_F(ScenarioTest, ClientsReachEveryTnodePrefix) {
  for (const auto& [prefix, origin] : shared_->tnode_prefixes()) {
    const auto path = shared_->plane().compute_path(
        shared_->client_as_a(),
        rovista::net::Ipv4Address(prefix.address().value() + 10));
    // Delivered or at worst no-host (host ids vary); never no-route.
    EXPECT_NE(path.reason, rovista::dataplane::DropReason::kNoRoute)
        << prefix.to_string();
  }
}

TEST_F(ScenarioTest, MeasuredAsesHaveHosts) {
  EXPECT_GE(shared_->measured_ases().size(), 30u);  // 30 + fixtures
  EXPECT_FALSE(shared_->vvp_candidates().empty());
  // Every candidate address resolves to a registered host.
  for (const auto addr : shared_->vvp_candidates()) {
    EXPECT_NE(shared_->plane().host(addr), nullptr);
  }
}

TEST_F(ScenarioTest, FixturesArePresentAndMeasured) {
  const CaseStudies& cs = shared_->cases();
  const auto& measured = shared_->measured_ases();
  for (const auto asn :
       {cs.kpn, cs.att, cs.cd_rov_as, cs.cd_nonrov_provider,
        cs.default_route_as, cs.partial_as, cs.stale_claim_as}) {
    EXPECT_NE(asn, 0u);
    EXPECT_TRUE(shared_->graph().contains(asn));
    EXPECT_NE(std::find(measured.begin(), measured.end(), asn),
              measured.end())
        << asn;
  }
  EXPECT_EQ(cs.kpn_stub_customers.size(), 4u);
}

TEST_F(ScenarioTest, FixtureGroundTruth) {
  const CaseStudies& cs = shared_->cases();
  const Date late = shared_->end();
  EXPECT_EQ(shared_->true_mode(cs.cd_nonrov_provider, late), RovMode::kNone);
  EXPECT_EQ(shared_->true_mode(cs.cd_rov_as, late), RovMode::kFull);
  EXPECT_EQ(shared_->true_mode(cs.att, late), RovMode::kExemptCustomers);
  EXPECT_EQ(shared_->true_mode(cs.stale_claim_as, late), RovMode::kNone);
  // KPN flips exactly at its date.
  EXPECT_EQ(shared_->true_mode(cs.kpn, cs.kpn_rov_date - 1), RovMode::kNone);
  EXPECT_EQ(shared_->true_mode(cs.kpn, cs.kpn_rov_date), RovMode::kFull);
}

TEST_F(ScenarioTest, OperatorClaimsIncludeStaleOnes) {
  const auto& claims = shared_->operator_claims();
  EXPECT_GE(claims.size(), 12u);
  const auto stale = std::count_if(
      claims.begin(), claims.end(),
      [](const OperatorClaim& c) { return c.stale; });
  EXPECT_GE(stale, 3);
  const auto nonrov = std::count_if(
      claims.begin(), claims.end(),
      [](const OperatorClaim& c) { return !c.claims_rov; });
  EXPECT_GE(nonrov, 2);
}

TEST_F(ScenarioTest, ReferenceAsesMatchTruth) {
  const auto rov_refs = shared_->rov_reference_ases(shared_->start(), 10);
  EXPECT_FALSE(rov_refs.empty());
  for (const auto asn : rov_refs) {
    EXPECT_EQ(shared_->true_mode(asn, shared_->start()), RovMode::kFull);
  }
  const auto non_refs =
      shared_->non_rov_reference_ases(shared_->start(), 10);
  EXPECT_FALSE(non_refs.empty());
  for (const auto asn : non_refs) {
    EXPECT_EQ(shared_->true_mode(asn, shared_->start()), RovMode::kNone);
  }
}

TEST_F(ScenarioTest, AsPrefixAndDarkPrefixDisjoint) {
  for (const auto asn : shared_->graph().all_asns()) {
    const auto main = shared_->as_prefix(asn);
    const auto dark = shared_->as_dark_prefix(asn);
    EXPECT_FALSE(main.covers(dark));
    EXPECT_FALSE(dark.covers(main));
  }
}

// Timeline tests mutate state: use a fresh scenario.

TEST(ScenarioTimeline, VrpCountGrowsOverWindow) {
  Scenario s(small_params(21));
  const std::size_t at_start = s.current_vrps().size();
  s.advance_to(s.end());
  const std::size_t at_end = s.current_vrps().size();
  EXPECT_GT(at_end, at_start);
}

TEST(ScenarioTimeline, SurgeAppearsAndDisappears) {
  Scenario s(small_params(22));
  const auto count_invalid = [&] {
    const auto snap = s.collector().snapshot(s.routing());
    return rovista::bgp::classify_snapshot(snap, s.current_vrps())
        .exclusively_invalid;
  };
  s.advance_to(Date::from_ymd(2022, 5, 1));
  const std::size_t before = count_invalid();
  s.advance_to(Date::from_ymd(2022, 6, 15));
  const std::size_t during = count_invalid();
  s.advance_to(Date::from_ymd(2022, 9, 1));
  const std::size_t after = count_invalid();
  EXPECT_GT(during, before);
  EXPECT_LT(after, during);
}

TEST(ScenarioTimeline, RovDeploymentReducesReach) {
  Scenario s(small_params(23));
  const auto& cs = s.cases();
  // Before KPN's flip its stub customers reach the tNode prefixes;
  // afterwards they do not (collateral benefit).
  const auto& [prefix, origin] = s.tnode_prefixes().front();
  const auto probe_addr =
      rovista::net::Ipv4Address(prefix.address().value() + 10);
  s.advance_to(cs.kpn_rov_date - 5);
  const bool before =
      s.plane().compute_path(cs.kpn_stub_customers[0], probe_addr).delivered;
  s.advance_to(cs.kpn_rov_date + 5);
  const bool after =
      s.plane().compute_path(cs.kpn_stub_customers[0], probe_addr).delivered;
  EXPECT_TRUE(before);
  EXPECT_FALSE(after);
}

TEST(ScenarioTimeline, CloudflareRelationshipFlip) {
  Scenario s(small_params(24));
  const auto& cs = s.cases();
  s.advance_to(cs.cloudflare_becomes_customer - 2);
  EXPECT_EQ(s.graph().relationship(cs.att, cs.cloudflare),
            rovista::topology::NeighborKind::kPeer);
  s.advance_to(cs.cloudflare_becomes_customer + 1);
  EXPECT_EQ(s.graph().relationship(cs.att, cs.cloudflare),
            rovista::topology::NeighborKind::kCustomer);
}

TEST(ScenarioDeterminism, SameSeedSameWorld) {
  Scenario a(small_params(31));
  Scenario b(small_params(31));
  EXPECT_EQ(a.graph().size(), b.graph().size());
  EXPECT_EQ(a.vvp_candidates().size(), b.vvp_candidates().size());
  for (std::size_t i = 0; i < a.vvp_candidates().size(); ++i) {
    EXPECT_EQ(a.vvp_candidates()[i], b.vvp_candidates()[i]);
  }
  EXPECT_EQ(a.tnode_prefixes().size(), b.tnode_prefixes().size());
  for (std::size_t i = 0; i < a.tnode_prefixes().size(); ++i) {
    EXPECT_EQ(a.tnode_prefixes()[i].first, b.tnode_prefixes()[i].first);
    EXPECT_EQ(a.tnode_prefixes()[i].second, b.tnode_prefixes()[i].second);
  }
  EXPECT_EQ(a.current_vrps().size(), b.current_vrps().size());
}

TEST(ScenarioDeterminism, DifferentSeedDifferentWorld) {
  Scenario a(small_params(32));
  Scenario b(small_params(33));
  // Same sizes, different wiring: tNode prefixes should differ.
  bool any_difference = a.tnode_prefixes().size() != b.tnode_prefixes().size();
  for (std::size_t i = 0;
       !any_difference &&
       i < std::min(a.tnode_prefixes().size(), b.tnode_prefixes().size());
       ++i) {
    any_difference = a.tnode_prefixes()[i].first != b.tnode_prefixes()[i].first;
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
