// Tests for the MRT TABLE_DUMP_V2 export/import of collector snapshots.
#include <gtest/gtest.h>

#include <algorithm>

#include "bgp/mrt.h"
#include "bgp/routing_system.h"
#include "scan/tnode_discovery.h"
#include "topology/as_graph.h"
#include "util/rng.h"

namespace {

using namespace rovista;
using namespace rovista::bgp;
using rovista::net::Ipv4Address;
using rovista::net::Ipv4Prefix;

Ipv4Prefix pfx(const char* s) { return *Ipv4Prefix::parse(s); }

CollectorSnapshot sample_snapshot() {
  CollectorSnapshot snap;
  const auto add = [&](const char* prefix, std::vector<Asn> path, Asn peer) {
    CollectorEntry e;
    e.prefix = pfx(prefix);
    e.as_path = std::move(path);
    e.peer = peer;
    snap.entries.push_back(e);
  };
  add("10.1.0.0/16", {100, 200, 300}, 100);
  add("10.1.0.0/16", {101, 300}, 101);
  add("10.2.32.0/20", {100, 400}, 100);
  add("192.168.7.0/24", {101, 200, 65551}, 101);  // a 4-octet-only ASN
  return snap;
}

TEST(Mrt, RecordFraming) {
  mrt::Record rec;
  rec.timestamp = 1663632000;
  rec.subtype = mrt::kSubtypeRibIpv4Unicast;
  rec.body = {1, 2, 3, 4, 5};
  const auto bytes = rec.serialize();
  EXPECT_EQ(bytes.size(), 12u + 5u);
  const auto parsed = mrt::Record::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->second, bytes.size());
  EXPECT_EQ(parsed->first.timestamp, 1663632000u);
  EXPECT_EQ(parsed->first.type, mrt::kTypeTableDumpV2);
  EXPECT_EQ(parsed->first.subtype, mrt::kSubtypeRibIpv4Unicast);
  EXPECT_EQ(parsed->first.body, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
}

TEST(Mrt, RecordParseRejectsTruncation) {
  mrt::Record rec;
  rec.body = {1, 2, 3};
  auto bytes = rec.serialize();
  bytes.pop_back();
  EXPECT_FALSE(mrt::Record::parse(bytes).has_value());
  EXPECT_FALSE(mrt::Record::parse({}).has_value());
}

TEST(Mrt, SnapshotRoundTrip) {
  const CollectorSnapshot original = sample_snapshot();
  const auto bytes = mrt::export_table_dump(original, 1663632000);
  const auto restored = mrt::import_table_dump(bytes);
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->entries.size(), original.entries.size());

  // Entries survive with prefix, peer and full AS path intact (order may
  // be regrouped by prefix).
  for (const CollectorEntry& want : original.entries) {
    const auto it = std::find_if(
        restored->entries.begin(), restored->entries.end(),
        [&](const CollectorEntry& got) {
          return got.prefix == want.prefix && got.peer == want.peer &&
                 got.as_path == want.as_path;
        });
    EXPECT_NE(it, restored->entries.end())
        << want.prefix.to_string() << " via peer " << want.peer;
  }
  // Derived views agree.
  EXPECT_EQ(restored->prefixes().size(), original.prefixes().size());
  EXPECT_EQ(restored->origins_of(pfx("10.1.0.0/16")),
            original.origins_of(pfx("10.1.0.0/16")));
}

TEST(Mrt, EmptySnapshot) {
  const CollectorSnapshot empty;
  const auto bytes = mrt::export_table_dump(empty, 42);
  const auto restored = mrt::import_table_dump(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_TRUE(restored->entries.empty());
}

TEST(Mrt, ZeroLengthPrefixEncodes) {
  CollectorSnapshot snap;
  CollectorEntry e;
  e.prefix = pfx("0.0.0.0/0");
  e.as_path = {7, 8};
  e.peer = 7;
  snap.entries.push_back(e);
  const auto restored = mrt::import_table_dump(
      mrt::export_table_dump(snap, 1));
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->entries.size(), 1u);
  EXPECT_EQ(restored->entries[0].prefix, pfx("0.0.0.0/0"));
}

TEST(Mrt, RibBeforePeerIndexRejected) {
  // Build a stream whose first record is a RIB record.
  CollectorSnapshot snap = sample_snapshot();
  const auto bytes = mrt::export_table_dump(snap, 1);
  // Locate the second record (first RIB) and present the stream from it.
  const auto first = mrt::Record::parse(bytes);
  ASSERT_TRUE(first.has_value());
  const std::span<const std::uint8_t> tail(bytes.data() + first->second,
                                           bytes.size() - first->second);
  EXPECT_FALSE(mrt::import_table_dump(tail).has_value());
}

TEST(Mrt, UnknownRecordTypesSkipped) {
  CollectorSnapshot snap = sample_snapshot();
  auto bytes = mrt::export_table_dump(snap, 1);
  // Prepend an unknown record type: import must skip it.
  mrt::Record alien;
  alien.type = 99;
  alien.subtype = 5;
  alien.body = {0xde, 0xad};
  const auto alien_bytes = alien.serialize();
  bytes.insert(bytes.begin(), alien_bytes.begin(), alien_bytes.end());
  const auto restored = mrt::import_table_dump(bytes);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->entries.size(), snap.entries.size());
}

TEST(Mrt, FuzzRandomBytesNeverCrash) {
  util::Rng rng(31337);
  for (int i = 0; i < 5000; ++i) {
    std::vector<std::uint8_t> bytes(rng.uniform_u64(0, 128));
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.uniform_u64(0, 255));
    }
    (void)mrt::import_table_dump(bytes);  // must not crash or overread
  }
}

TEST(Mrt, FuzzBitFlippedValidDump) {
  const auto bytes = mrt::export_table_dump(sample_snapshot(), 99);
  util::Rng rng(7);
  for (int i = 0; i < 3000; ++i) {
    auto mutated = bytes;
    const std::size_t pos = rng.index(mutated.size());
    mutated[pos] ^= static_cast<std::uint8_t>(1u << rng.uniform_u64(0, 7));
    (void)mrt::import_table_dump(mutated);  // parse or reject, no crash
  }
}

TEST(Mrt, LiveCollectorSnapshotRoundTrips) {
  // End-to-end: routes computed by the engine, dumped and re-imported,
  // feed the same test-prefix selection.
  topology::AsGraph g;
  for (Asn a : {1u, 2u, 3u, 4u}) g.add_as({a, ""});
  g.add_p2c(1, 2);
  g.add_p2c(1, 3);
  g.add_p2c(2, 4);
  RoutingSystem routing(g);
  rpki::VrpSet vrps;
  vrps.add({pfx("10.4.0.0/16"), 16, 99});
  routing.announce({pfx("10.4.0.0/16"), 4});
  routing.announce({pfx("10.3.0.0/16"), 3});

  Collector collector("rv", {1, 3});
  const auto snap = collector.snapshot(routing);
  const auto restored =
      mrt::import_table_dump(mrt::export_table_dump(snap, 1700000000));
  ASSERT_TRUE(restored.has_value());

  const auto direct = scan::select_test_prefixes(snap, vrps);
  const auto via_mrt = scan::select_test_prefixes(*restored, vrps);
  EXPECT_EQ(direct, via_mrt);
  ASSERT_EQ(via_mrt.size(), 1u);
  EXPECT_EQ(via_mrt[0], pfx("10.4.0.0/16"));
}

}  // namespace
