// VrpDeltaComputer unit tests plus the protocol property: the delta the
// computer derives for a snapshot pair is exactly the announce/withdraw
// PDU stream an RFC 8210 cache serves a router holding the old serial.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "incremental/vrp_delta.h"
#include "rpki/rtr.h"
#include "util/rng.h"

namespace {

using namespace rovista;
using rovista::incremental::VrpDelta;
using rovista::incremental::VrpDeltaComputer;

net::Ipv4Prefix pfx(const char* s) { return *net::Ipv4Prefix::parse(s); }

rpki::Vrp vrp(const char* prefix, std::uint8_t max_len, std::uint32_t asn) {
  return rpki::Vrp{pfx(prefix), max_len, asn};
}

rpki::VrpSet make_set(const std::vector<rpki::Vrp>& vrps) {
  rpki::VrpSet set;
  for (const rpki::Vrp& v : vrps) set.add(v);
  return set;
}

TEST(VrpDelta, IdenticalSnapshotsYieldEmptyDelta) {
  const auto set = make_set({vrp("10.0.0.0/16", 24, 65001),
                             vrp("10.1.0.0/16", 16, 65002)});
  const VrpDelta delta = VrpDeltaComputer::diff(set, set);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.size(), 0u);
}

TEST(VrpDelta, PureAnnouncement) {
  const auto prev = make_set({vrp("10.0.0.0/16", 24, 65001)});
  const auto next = make_set(
      {vrp("10.0.0.0/16", 24, 65001), vrp("10.1.0.0/16", 16, 65002)});
  const VrpDelta delta = VrpDeltaComputer::diff(prev, next);
  ASSERT_EQ(delta.announced.size(), 1u);
  EXPECT_EQ(delta.announced[0], vrp("10.1.0.0/16", 16, 65002));
  EXPECT_TRUE(delta.withdrawn.empty());
}

TEST(VrpDelta, PureWithdrawal) {
  const auto prev = make_set(
      {vrp("10.0.0.0/16", 24, 65001), vrp("10.1.0.0/16", 16, 65002)});
  const auto next = make_set({vrp("10.0.0.0/16", 24, 65001)});
  const VrpDelta delta = VrpDeltaComputer::diff(prev, next);
  EXPECT_TRUE(delta.announced.empty());
  ASSERT_EQ(delta.withdrawn.size(), 1u);
  EXPECT_EQ(delta.withdrawn[0], vrp("10.1.0.0/16", 16, 65002));
}

TEST(VrpDelta, MaxLengthChangeIsWithdrawPlusAnnounce) {
  // Same (prefix, asn) with a new max_length is a different VRP — RFC
  // 8210 has no "update" PDU, so it must appear on both sides.
  const auto prev = make_set({vrp("10.0.0.0/16", 16, 65001)});
  const auto next = make_set({vrp("10.0.0.0/16", 24, 65001)});
  const VrpDelta delta = VrpDeltaComputer::diff(prev, next);
  ASSERT_EQ(delta.announced.size(), 1u);
  ASSERT_EQ(delta.withdrawn.size(), 1u);
  EXPECT_EQ(delta.announced[0].max_length, 24);
  EXPECT_EQ(delta.withdrawn[0].max_length, 16);
}

TEST(VrpDelta, FlattenDeduplicates) {
  rpki::VrpSet set;
  set.add(vrp("10.0.0.0/16", 24, 65001));
  set.add(vrp("10.0.0.0/16", 24, 65001));  // duplicate entry in the trie
  const auto flat = VrpDeltaComputer::flatten(set);
  EXPECT_EQ(flat.size(), 1u);
  EXPECT_TRUE(std::is_sorted(flat.begin(), flat.end()));
}

// ---------- property: delta ≡ rtr::Cache serial diff ----------

std::vector<rpki::Vrp> random_vrps(util::Rng& rng, std::size_t count) {
  std::vector<rpki::Vrp> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // A deliberately small space so snapshots overlap and collide.
    const std::uint32_t octet2 = static_cast<std::uint32_t>(
        rng.uniform_u64(0, 7));
    const std::uint8_t length = rng.bernoulli(0.5) ? 16 : 20;
    const net::Ipv4Address addr((10u << 24) | (octet2 << 16));
    const net::Ipv4Prefix prefix(addr, length);
    const std::uint8_t max_length = static_cast<std::uint8_t>(
        rng.uniform_u64(length, 24));
    const std::uint32_t asn =
        static_cast<std::uint32_t>(rng.uniform_u64(65000, 65007));
    out.push_back(rpki::Vrp{prefix, max_length, asn});
  }
  return out;
}

// Serve the router's Serial Query for the pre-`next` serial and split the
// resulting Prefix PDUs by their announce flag.
VrpDelta delta_via_rtr(const rpki::VrpSet& prev, const rpki::VrpSet& next) {
  rpki::rtr::Cache cache(0x5157);
  const std::uint32_t serial_prev = cache.publish(prev);
  cache.publish(next);

  std::vector<rpki::rtr::Pdu> response;
  cache.handle(rpki::rtr::make_serial_query(cache.session_id(), serial_prev),
               response);

  VrpDelta delta;
  bool saw_cache_response = false;
  bool saw_end_of_data = false;
  for (const rpki::rtr::Pdu& pdu : response) {
    switch (pdu.type) {
      case rpki::rtr::PduType::kCacheResponse:
        saw_cache_response = true;
        break;
      case rpki::rtr::PduType::kIpv4Prefix: {
        const rpki::Vrp v{net::Ipv4Prefix(pdu.prefix, pdu.prefix_length),
                          pdu.max_length, pdu.asn};
        (pdu.announce ? delta.announced : delta.withdrawn).push_back(v);
        break;
      }
      case rpki::rtr::PduType::kEndOfData:
        saw_end_of_data = true;
        break;
      default:
        ADD_FAILURE() << "unexpected PDU type in serial response";
    }
  }
  EXPECT_TRUE(saw_cache_response);
  EXPECT_TRUE(saw_end_of_data);
  std::sort(delta.announced.begin(), delta.announced.end());
  std::sort(delta.withdrawn.begin(), delta.withdrawn.end());
  return delta;
}

TEST(VrpDeltaProperty, MatchesRtrSerialDiff) {
  util::Rng rng(20230912);
  for (int trial = 0; trial < 50; ++trial) {
    const auto prev_vrps =
        random_vrps(rng, static_cast<std::size_t>(rng.uniform_u64(0, 24)));
    auto next_vrps = prev_vrps;
    // Mutate: drop a suffix, then add fresh draws.
    if (!next_vrps.empty()) {
      next_vrps.resize(static_cast<std::size_t>(
          rng.uniform_u64(0, next_vrps.size())));
    }
    const auto added =
        random_vrps(rng, static_cast<std::size_t>(rng.uniform_u64(0, 12)));
    next_vrps.insert(next_vrps.end(), added.begin(), added.end());

    const rpki::VrpSet prev = make_set(prev_vrps);
    const rpki::VrpSet next = make_set(next_vrps);

    const VrpDelta computed = VrpDeltaComputer::diff(prev, next);
    const VrpDelta via_rtr = delta_via_rtr(prev, next);

    EXPECT_EQ(computed.announced, via_rtr.announced) << "trial " << trial;
    EXPECT_EQ(computed.withdrawn, via_rtr.withdrawn) << "trial " << trial;
  }
}

}  // namespace
