// Determinism harness for the parallel measurement engine.
//
// The contract under test (core/parallel_round.h): a MeasurementRound is
// a pure function of (scenario params, date, vVPs, tNodes, config) —
// independent of thread count, scheduling, and repetition. The serial
// reference is Rovista::run_round executed against one fresh replica.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/parallel_round.h"
#include "round_fixture.h"
#include "snapshot/world_source.h"

namespace {

using namespace rovista;

class ParallelRound : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    params_ = new scenario::ScenarioParams(testfx::round_params());
    date_ = testfx::round_date(*params_);
    config_ = new core::RovistaConfig(testfx::round_config());
    inputs_ = new testfx::RoundInputs(
        testfx::acquire_round_inputs(*params_, date_, *config_));
    factory_ = new core::ReplicaFactory(
        scenario::make_replica_factory(*params_, date_));
    // Same fixture through the epoch-snapshot engine: one immutable
    // epoch, every worker an EpochReader borrowing it. The equivalence
    // axis below holds both engines to the same serial reference.
    snapshot_factory_ = new core::ReplicaFactory(snapshot::make_measurement_factory(
        *params_, date_, snapshot::EngineMode::kSnapshot));

    // Serial reference: the plain nested-loop engine on a fresh replica
    // world built exactly like the factory builds worker replicas.
    scenario::Scenario world(*params_);
    world.advance_to(date_);
    scan::MeasurementClient client_a(world.plane(), world.client_as_a(),
                                     world.client_addr_a());
    scan::MeasurementClient client_b(world.plane(), world.client_as_b(),
                                     world.client_addr_b());
    core::Rovista rovista(world.plane(), client_a, client_b, *config_);
    serial_ = new core::MeasurementRound(
        rovista.run_round(inputs_->vvps, inputs_->tnodes));
  }

  static void TearDownTestSuite() {
    delete serial_;
    delete snapshot_factory_;
    delete factory_;
    delete inputs_;
    delete config_;
    delete params_;
  }

  static core::MeasurementRound run_with_threads(
      int num_threads, const core::ReplicaFactory* factory = factory_) {
    core::ParallelRoundConfig config;
    config.experiment = config_->experiment;
    config.scoring = config_->scoring;
    config.num_threads = num_threads;
    const core::ParallelRoundRunner runner(*factory, config);
    return runner.run(inputs_->vvps, inputs_->tnodes);
  }

  static core::MeasurementRound run_snapshot(int num_threads) {
    return run_with_threads(num_threads, snapshot_factory_);
  }

  static void expect_bit_identical(const core::MeasurementRound& a,
                                   const core::MeasurementRound& b) {
    EXPECT_EQ(a.experiments_run, b.experiments_run);
    EXPECT_EQ(a.inconclusive, b.inconclusive);
    ASSERT_EQ(a.observations.size(), b.observations.size());
    for (std::size_t i = 0; i < a.observations.size(); ++i) {
      const core::PairObservation& x = a.observations[i];
      const core::PairObservation& y = b.observations[i];
      ASSERT_EQ(x.vvp_as, y.vvp_as) << "observation " << i;
      ASSERT_EQ(x.vvp.value(), y.vvp.value()) << "observation " << i;
      ASSERT_EQ(x.tnode.value(), y.tnode.value()) << "observation " << i;
      ASSERT_EQ(x.verdict, y.verdict) << "observation " << i;
    }
    ASSERT_EQ(a.scores.size(), b.scores.size());
    for (std::size_t i = 0; i < a.scores.size(); ++i) {
      const core::AsScore& x = a.scores[i];
      const core::AsScore& y = b.scores[i];
      ASSERT_EQ(x.asn, y.asn);
      // Bit-identical, not approximately-equal: the whole point.
      ASSERT_EQ(std::memcmp(&x.score, &y.score, sizeof(double)), 0)
          << "AS" << x.asn << ": " << x.score << " vs " << y.score;
      ASSERT_EQ(x.vvp_count, y.vvp_count);
      ASSERT_EQ(x.tnodes_consistent, y.tnodes_consistent);
      ASSERT_EQ(x.tnodes_outbound, y.tnodes_outbound);
      ASSERT_EQ(x.tnodes_inconsistent, y.tnodes_inconsistent);
    }
  }

  static scenario::ScenarioParams* params_;
  static util::Date date_;
  static core::RovistaConfig* config_;
  static testfx::RoundInputs* inputs_;
  static core::ReplicaFactory* factory_;
  static core::ReplicaFactory* snapshot_factory_;
  static core::MeasurementRound* serial_;
};

scenario::ScenarioParams* ParallelRound::params_ = nullptr;
util::Date ParallelRound::date_;
core::RovistaConfig* ParallelRound::config_ = nullptr;
testfx::RoundInputs* ParallelRound::inputs_ = nullptr;
core::ReplicaFactory* ParallelRound::factory_ = nullptr;
core::ReplicaFactory* ParallelRound::snapshot_factory_ = nullptr;
core::MeasurementRound* ParallelRound::serial_ = nullptr;

TEST_F(ParallelRound, FixtureIsNonTrivial) {
  // Guard against a vacuous determinism check: the standard fixture must
  // exercise real sharding (more vVPs than the widest pool below) and
  // produce actual verdicts and scores.
  EXPECT_GE(inputs_->vvps.size(), 9u);
  EXPECT_GE(inputs_->tnodes.size(), 3u);
  EXPECT_GT(serial_->experiments_run, 0u);
  EXPECT_LT(serial_->inconclusive, serial_->experiments_run);
  EXPECT_FALSE(serial_->scores.empty());
}

TEST_F(ParallelRound, OneThreadMatchesSerial) {
  expect_bit_identical(*serial_, run_with_threads(1));
}

TEST_F(ParallelRound, TwoThreadsMatchSerial) {
  expect_bit_identical(*serial_, run_with_threads(2));
}

TEST_F(ParallelRound, FourThreadsMatchSerial) {
  expect_bit_identical(*serial_, run_with_threads(4));
}

TEST_F(ParallelRound, EightThreadsMatchSerial) {
  expect_bit_identical(*serial_, run_with_threads(8));
}

TEST_F(ParallelRound, RepeatedInvocationsBitIdentical) {
  // Same seed, same config, two fresh runs: scheduling must not leak in.
  expect_bit_identical(run_with_threads(4), run_with_threads(4));
}

// --- snapshot-vs-replica equivalence axis ---------------------------
//
// The epoch-snapshot engine must be observationally indistinguishable
// from the replica engine: same serial reference, every thread count.
// This is the license to delete the replica path (see ISSUE/DESIGN).

TEST_F(ParallelRound, SnapshotEngineOneThreadMatchesSerial) {
  expect_bit_identical(*serial_, run_snapshot(1));
}

TEST_F(ParallelRound, SnapshotEngineTwoThreadsMatchSerial) {
  expect_bit_identical(*serial_, run_snapshot(2));
}

TEST_F(ParallelRound, SnapshotEngineFourThreadsMatchSerial) {
  expect_bit_identical(*serial_, run_snapshot(4));
}

TEST_F(ParallelRound, SnapshotEngineEightThreadsMatchSerial) {
  expect_bit_identical(*serial_, run_snapshot(8));
}

TEST_F(ParallelRound, SnapshotEngineRepeatedInvocationsBitIdentical) {
  expect_bit_identical(run_snapshot(4), run_snapshot(4));
}

TEST_F(ParallelRound, EngineEquivalenceAtEveryThreadCount) {
  for (const int threads : {1, 2, 4, 8}) {
    expect_bit_identical(run_with_threads(threads), run_snapshot(threads));
  }
}

TEST_F(ParallelRound, RovistaParallelEntryPointMatches) {
  // The RovistaConfig::num_threads knob routes through the same engine.
  scenario::Scenario world(*params_);
  world.advance_to(date_);
  scan::MeasurementClient client_a(world.plane(), world.client_as_a(),
                                   world.client_addr_a());
  scan::MeasurementClient client_b(world.plane(), world.client_as_b(),
                                   world.client_addr_b());
  core::RovistaConfig config = *config_;
  config.num_threads = 8;
  core::Rovista rovista(world.plane(), client_a, client_b, config);
  expect_bit_identical(
      *serial_,
      rovista.run_round_parallel(*factory_, inputs_->vvps, inputs_->tnodes));
}

TEST_F(ParallelRound, CloneFreshPlaneIsIndependentAndPristine) {
  scenario::Scenario world(*params_);
  world.advance_to(date_);
  auto replica = world.plane().clone_fresh(world.routing());

  // Every host exists in the replica, and the replica starts pristine.
  for (const auto addr : world.vvp_candidates()) {
    ASSERT_NE(replica->host(addr), nullptr);
    EXPECT_EQ(replica->as_of(addr), world.plane().as_of(addr));
  }
  EXPECT_EQ(replica->sim().now(), 0u);
  EXPECT_EQ(replica->packets_sent(), 0u);

  // Mutating the original must not touch the replica.
  scan::MeasurementClient client_a(world.plane(), world.client_as_a(),
                                   world.client_addr_a());
  const auto target = world.vvp_candidates().front();
  client_a.probe_at(world.plane().sim().now() + 1000, target, 80, 40001);
  world.plane().sim().run();
  EXPECT_GT(world.plane().packets_sent(), 0u);
  EXPECT_EQ(replica->packets_sent(), 0u);
  EXPECT_EQ(replica->sim().now(), 0u);
  EXPECT_EQ(replica->sim().pending(), 0u);
}

}  // namespace
