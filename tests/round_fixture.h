// Shared "standard fixture" for the measurement-round determinism and
// golden regression tests (and mirrored by bench_parallel_round): a
// small deterministic world plus one acquisition pass.
//
// Discovery (tNode/vVP acquisition) mutates host state — probes advance
// IP-ID counters and background RNG streams — so it runs on a throwaway
// world; measurement worlds are then built fresh from the same params,
// which is exactly what scenario::make_replica_factory produces.
#pragma once

#include <vector>

#include "core/rovista.h"
#include "scenario/scenario.h"

namespace rovista::testfx {

inline scenario::ScenarioParams round_params(std::uint64_t seed = 11) {
  scenario::ScenarioParams params;
  params.seed = seed;
  params.topology.tier1_count = 4;
  params.topology.tier2_count = 14;
  params.topology.tier3_count = 36;
  params.topology.stub_count = 120;
  params.tnode_prefix_count = 4;
  params.measured_as_count = 12;
  params.hosts_per_measured_as = 3;
  params.collector_peer_count = 30;
  return params;
}

inline util::Date round_date(const scenario::ScenarioParams& params) {
  return params.start + 150;
}

inline core::RovistaConfig round_config() {
  core::RovistaConfig config;
  config.scoring.min_vvps_per_as = 2;
  config.scoring.min_tnodes = 2;
  return config;
}

struct RoundInputs {
  std::vector<scan::Vvp> vvps;
  std::vector<scan::Tnode> tnodes;
};

inline RoundInputs acquire_round_inputs(const scenario::ScenarioParams& params,
                                        util::Date date,
                                        const core::RovistaConfig& config) {
  scenario::Scenario s(params);
  s.advance_to(date);
  scan::MeasurementClient client_a(s.plane(), s.client_as_a(),
                                   s.client_addr_a());
  scan::MeasurementClient client_b(s.plane(), s.client_as_b(),
                                   s.client_addr_b());
  core::Rovista rovista(s.plane(), client_a, client_b, config);
  const auto snapshot = s.collector().snapshot(s.routing());
  RoundInputs inputs;
  inputs.tnodes = rovista.acquire_tnodes(
      snapshot, s.current_vrps(), s.rov_reference_ases(s.current(), 10),
      s.non_rov_reference_ases(s.current(), 10));
  inputs.vvps = rovista.acquire_vvps(s.vvp_candidates());
  return inputs;
}

}  // namespace rovista::testfx
