// Readers-vs-installer stress, extended through the server worker loop
// (the tier-1 TSan axis): real server worker threads answer RQP queries
// over loopback while the publisher side keeps publishing new epochs
// and feed rounds underneath them. Run under -DSANITIZE=thread by
// scripts/tier1.sh (label tsan-stress).
//
// Beyond "TSan stays quiet", every response is checked for snapshot
// consistency: a SCORE response carries the feed sequence it was
// answered from, and its score string and round date must equal what
// that exact round published — proving a worker never observes a
// half-installed round (torn read) even while publish() runs
// concurrently.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/scoring.h"
#include "round_fixture.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "snapshot/epoch_publisher.h"
#include "util/csv.h"

namespace {

using namespace rovista;
using namespace rovista::serve;

struct ExpectedRound {
  std::int64_t date_days = 0;
  std::uint64_t world_digest = 0;
  std::map<std::uint32_t, std::string> score_strs;
};

TEST(ServeStress, WorkersVsConcurrentPublishes) {
  constexpr int kRounds = 4;
  constexpr int kClients = 4;

  snapshot::EpochPublisher publisher(testfx::round_params());
  publisher.advance_to(publisher.world().start() + 30);

  auto feed = std::make_shared<ScoreFeed>();
  ServerOptions options;
  options.port = 0;
  options.workers = 2;
  Server server(options, feed);
  ASSERT_TRUE(server.start());

  // Registry of what each feed sequence published. An entry is inserted
  // *before* the feed swap, so no client can ever see a sequence that
  // is not yet registered.
  std::mutex expected_mutex;
  std::map<std::uint64_t, ExpectedRound> expected;

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  std::atomic<int> failures{0};
  const topology::Asn reach_as = publisher.world().client_as_a();

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      if (!client.connect("127.0.0.1", server.port())) {
        ++failures;
        return;
      }
      std::uint64_t rng = 0x1234u + static_cast<std::uint64_t>(c);
      std::uint32_t id = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
        Request request;
        request.request_id = ++id;
        const std::uint64_t pick = (rng >> 33) % 10;
        if (pick == 0) {
          request.opcode = Opcode::kPing;
        } else if (pick == 1) {
          request.opcode = Opcode::kReach;
          request.asn = reach_as;
          request.port = 80;
        } else {
          request.opcode = Opcode::kScore;
          request.asn = 64500 + static_cast<std::uint32_t>((rng >> 20) % 8);
        }
        Response response;
        if (!client.call(request, response)) {
          ++failures;
          return;
        }
        if (response.epoch_sequence == 0) continue;  // pre-first-round
        ExpectedRound round;
        {
          std::lock_guard<std::mutex> lock(expected_mutex);
          const auto it = expected.find(response.epoch_sequence);
          if (it == expected.end()) {
            ADD_FAILURE() << "response from unregistered sequence "
                          << response.epoch_sequence;
            ++failures;
            return;
          }
          round = it->second;
        }
        EXPECT_EQ(response.round_date_days, round.date_days);
        if (response.opcode == Opcode::kScore &&
            response.status == Status::kOk) {
          const auto it = round.score_strs.find(response.asn);
          ASSERT_NE(it, round.score_strs.end());
          // The torn-read oracle: score string byte-identical to what
          // this exact round published.
          EXPECT_EQ(response.score_str, it->second);
          ++checked;
        }
        if (response.opcode == Opcode::kPing) {
          EXPECT_EQ(response.world_digest, round.world_digest);
        }
      }
    });
  }

  // The installer side: advance + publish kRounds epochs under the
  // running clients.
  for (int r = 1; r <= kRounds; ++r) {
    publisher.advance_to(publisher.world().start() + 30 + r * 15);
    snapshot::EpochRef epoch = publisher.publish();

    std::vector<core::AsScore> scores;
    ExpectedRound round;
    round.date_days = (epoch.world().date()).days_since_epoch();
    round.world_digest = epoch.world().digest();
    for (std::uint32_t i = 0; i < 8; ++i) {
      core::AsScore s;
      s.asn = 64500 + i;
      s.score = static_cast<double>((i * 7 + r) % 101) / 100.0;
      scores.push_back(s);
      round.score_strs[s.asn] = util::fmt_double(s.score, 2);
    }
    {
      std::lock_guard<std::mutex> lock(expected_mutex);
      expected[static_cast<std::uint64_t>(r)] = round;
    }
    feed->publish(epoch.world().date(), scores, epoch);
  }

  // Let the clients chew on the final round briefly, then stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();
  server.stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(checked.load(), 0u) << "stress never verified a score";
  // Reclamation: with the clients gone and the feed holding the last
  // round's pin, the epoch chain must have collapsed to that one epoch.
  EXPECT_EQ(publisher.live_epochs(), 1);
}

}  // namespace
