// Tests for src/topology: the AS graph, customer cones, AS rank, clique
// inference, and the synthetic topology generator's structural invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/as_graph.h"
#include "topology/cone.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace rovista::topology;
using rovista::util::Rng;

AsGraph diamond() {
  // 1 (tier1) provides 2 and 3; both provide 4; 2--3 peer.
  AsGraph g;
  for (Asn a : {1u, 2u, 3u, 4u}) g.add_as({a, "AS" + std::to_string(a)});
  g.add_p2c(1, 2);
  g.add_p2c(1, 3);
  g.add_p2c(2, 4);
  g.add_p2c(3, 4);
  g.add_p2p(2, 3);
  return g;
}

TEST(AsGraph, AddAndLookup) {
  AsGraph g;
  EXPECT_TRUE(g.add_as({10, "ten", Rir::kRipeNcc, "NL", 2}));
  EXPECT_FALSE(g.add_as({10, "dup"}));
  EXPECT_TRUE(g.contains(10));
  EXPECT_FALSE(g.contains(11));
  ASSERT_NE(g.info(10), nullptr);
  EXPECT_EQ(g.info(10)->name, "ten");
  EXPECT_EQ(g.info(10)->rir, Rir::kRipeNcc);
  EXPECT_EQ(g.info(11), nullptr);
}

TEST(AsGraph, RelationshipViews) {
  const AsGraph g = diamond();
  EXPECT_EQ(g.relationship(1, 2), NeighborKind::kCustomer);
  EXPECT_EQ(g.relationship(2, 1), NeighborKind::kProvider);
  EXPECT_EQ(g.relationship(2, 3), NeighborKind::kPeer);
  EXPECT_EQ(g.relationship(3, 2), NeighborKind::kPeer);
  EXPECT_EQ(g.relationship(1, 4), std::nullopt);
}

TEST(AsGraph, RejectsDuplicateAndSelfEdges) {
  AsGraph g = diamond();
  EXPECT_FALSE(g.add_p2c(1, 2));  // exists
  EXPECT_FALSE(g.add_p2p(2, 3));  // exists
  EXPECT_FALSE(g.add_p2c(2, 1));  // contradicts existing p2c
  EXPECT_FALSE(g.add_p2c(1, 1));
  EXPECT_FALSE(g.add_p2p(2, 2));
  EXPECT_FALSE(g.add_p2c(1, 99));  // unknown AS
}

TEST(AsGraph, NeighborsAggregated) {
  const AsGraph g = diamond();
  const auto n2 = g.neighbors(2);
  EXPECT_EQ(n2.size(), 3u);  // provider 1, customer 4, peer 3
  std::set<Asn> seen;
  for (const auto& nb : n2) seen.insert(nb.asn);
  EXPECT_EQ(seen, (std::set<Asn>{1, 3, 4}));
}

TEST(AsGraph, TransitFree) {
  const AsGraph g = diamond();
  const auto tf = g.transit_free();
  ASSERT_EQ(tf.size(), 1u);
  EXPECT_EQ(tf[0], 1u);
}

TEST(AsGraph, SetRelationshipRewiresEdge) {
  AsGraph g = diamond();
  // 2--3 peer becomes 2 -> 3 (3 is 2's customer).
  EXPECT_TRUE(g.set_relationship(2, 3, NeighborKind::kCustomer));
  EXPECT_EQ(g.relationship(2, 3), NeighborKind::kCustomer);
  EXPECT_EQ(g.relationship(3, 2), NeighborKind::kProvider);
  // And a previously missing edge can be created.
  EXPECT_TRUE(g.set_relationship(1, 4, NeighborKind::kCustomer));
  EXPECT_EQ(g.relationship(4, 1), NeighborKind::kProvider);
}

TEST(AsGraph, RemoveEdge) {
  AsGraph g = diamond();
  EXPECT_TRUE(g.remove_edge(2, 3));
  EXPECT_EQ(g.relationship(2, 3), std::nullopt);
  EXPECT_FALSE(g.remove_edge(2, 3));
}

TEST(CustomerCones, DiamondCones) {
  const AsGraph g = diamond();
  const CustomerCones cones(g);
  EXPECT_EQ(cones.cone_size(1), 4u);  // everyone
  EXPECT_EQ(cones.cone_size(2), 2u);  // itself + 4
  EXPECT_EQ(cones.cone_size(3), 2u);
  EXPECT_EQ(cones.cone_size(4), 1u);
  EXPECT_TRUE(cones.in_cone(1, 4));
  EXPECT_FALSE(cones.in_cone(4, 1));
  EXPECT_FALSE(cones.in_cone(2, 3));  // peers are not in each other's cone
}

TEST(CustomerCones, RankByConeAndRankMap) {
  const AsGraph g = diamond();
  const CustomerCones cones(g);
  const auto ranked = rank_by_cone(g, cones);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0], 1u);
  EXPECT_EQ(ranked[3], 4u);
  const auto rmap = rank_map(ranked);
  EXPECT_EQ(rmap.at(1), 1u);
  EXPECT_EQ(rmap.at(4), 4u);
}

TEST(CustomerCones, InferCliqueFindsMutualPeers) {
  AsGraph g;
  for (Asn a : {1u, 2u, 3u, 10u}) g.add_as({a, ""});
  g.add_p2p(1, 2);
  g.add_p2p(1, 3);
  g.add_p2p(2, 3);
  g.add_p2c(1, 10);
  const CustomerCones cones(g);
  const auto clique = infer_clique(g, cones);
  EXPECT_EQ(std::set<Asn>(clique.begin(), clique.end()),
            (std::set<Asn>{1, 2, 3}));
}

// ---------- generator invariants ----------

class GeneratorInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorInvariants, StructureHolds) {
  Rng rng(GetParam());
  TopologyParams params;
  params.tier1_count = 8;
  params.tier2_count = 30;
  params.tier3_count = 80;
  params.stub_count = 300;
  const AsGraph g = generate_topology(params, rng);

  EXPECT_EQ(g.size(), 8u + 30u + 80u + 300u);

  int tier1_seen = 0;
  for (const Asn asn : g.all_asns()) {
    const AsInfo* info = g.info(asn);
    ASSERT_NE(info, nullptr);
    if (info->tier == 1) {
      ++tier1_seen;
      EXPECT_TRUE(g.providers(asn).empty()) << asn;
    } else {
      // Everyone below tier 1 has at least one provider.
      EXPECT_FALSE(g.providers(asn).empty()) << asn;
    }
  }
  EXPECT_EQ(tier1_seen, 8);

  // Tier-1s form a full peering clique.
  const CustomerCones cones(g);
  const auto clique = infer_clique(g, cones);
  EXPECT_EQ(clique.size(), 8u);

  // Heavy tail: the largest cone should cover a large share of the graph.
  const auto ranked = rank_by_cone(g, cones);
  EXPECT_GT(cones.cone_size(ranked[0]), g.size() / 4);
}

TEST_P(GeneratorInvariants, DeterministicForSeed) {
  TopologyParams params;
  params.tier1_count = 4;
  params.tier2_count = 10;
  params.tier3_count = 20;
  params.stub_count = 50;
  Rng r1(GetParam());
  Rng r2(GetParam());
  const AsGraph a = generate_topology(params, r1);
  const AsGraph b = generate_topology(params, r2);
  ASSERT_EQ(a.size(), b.size());
  for (const Asn asn : a.all_asns()) {
    EXPECT_EQ(a.providers(asn), b.providers(asn));
    EXPECT_EQ(a.customers(asn), b.customers(asn));
    EXPECT_EQ(a.peers(asn), b.peers(asn));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorInvariants,
                         ::testing::Values(1, 17, 4242));

}  // namespace
