// Tests for score publication (the daily-dataset role) and the ZMap-style
// cyclic scan permutation.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "core/publish.h"
#include "scan/permutation.h"
#include "util/logging.h"

namespace {

using namespace rovista;
namespace fs = std::filesystem;

// ---------- CyclicPermutation ----------

TEST(Permutation, FullCoverageSmall) {
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 97ULL, 100ULL, 256ULL}) {
    scan::CyclicPermutation perm(n, 42);
    std::set<std::uint64_t> seen;
    while (const auto v = perm.next()) {
      EXPECT_LT(*v, n);
      EXPECT_TRUE(seen.insert(*v).second) << "duplicate " << *v;
    }
    EXPECT_EQ(seen.size(), n) << n;
  }
}

TEST(Permutation, DeterministicPerSeed) {
  scan::CyclicPermutation a(1000, 7);
  scan::CyclicPermutation b(1000, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Permutation, DifferentSeedsDifferentOrders) {
  scan::CyclicPermutation a(4096, 1);
  scan::CyclicPermutation b(4096, 2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 20);
}

TEST(Permutation, ResetReplaysSameOrder) {
  scan::CyclicPermutation perm(500, 9);
  std::vector<std::uint64_t> first;
  while (const auto v = perm.next()) first.push_back(*v);
  perm.reset();
  std::vector<std::uint64_t> second;
  while (const auto v = perm.next()) second.push_back(*v);
  EXPECT_EQ(first, second);
}

TEST(Permutation, NotSequential) {
  // The order should not be the identity (that's the point of it).
  scan::CyclicPermutation perm(4096, 3);
  int in_place = 0;
  std::uint64_t index = 0;
  while (const auto v = perm.next()) {
    if (*v == index) ++in_place;
    ++index;
  }
  EXPECT_LT(in_place, 64);
}

TEST(Permutation, SpreadsNeighborsApart) {
  // Consecutive outputs should rarely be address-adjacent — the §5
  // goal of never hammering one subnet.
  scan::CyclicPermutation perm(4096, 11);
  std::uint64_t prev = *perm.next();
  int adjacent = 0;
  int count = 0;
  while (const auto v = perm.next()) {
    if (*v == prev + 1 || prev == *v + 1) ++adjacent;
    prev = *v;
    ++count;
  }
  EXPECT_LT(adjacent, count / 50);
}

// ---------- publish / load ----------

core::AsScore make_score(core::Asn asn, double score) {
  core::AsScore s;
  s.asn = asn;
  s.score = score;
  return s;
}

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("rovista-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
  }
  ~TempDir() { fs::remove_all(path); }
  static int counter;
};
int TempDir::counter = 0;

TEST(Publish, RoundTrip) {
  core::LongitudinalStore store;
  const util::Date d1 = util::Date::from_ymd(2022, 1, 1);
  const util::Date d2 = util::Date::from_ymd(2022, 2, 1);
  store.record(d1, std::vector<core::AsScore>{make_score(10, 0.0),
                                              make_score(20, 92.5)});
  store.record(d2, std::vector<core::AsScore>{make_score(10, 100.0)});

  TempDir dir;
  const auto written = core::publish_scores(store, dir.path.string());
  ASSERT_TRUE(written.has_value());
  EXPECT_EQ(*written, 2u);
  EXPECT_TRUE(fs::exists(dir.path / "index.csv"));
  EXPECT_TRUE(fs::exists(dir.path / "scores-2022-01-01.csv"));
  EXPECT_TRUE(fs::exists(dir.path / "scores-2022-02-01.csv"));

  const auto loaded = core::load_scores(dir.path.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->as_count(), 2u);
  EXPECT_EQ(loaded->score_on(10, d1), 0.0);
  EXPECT_EQ(loaded->score_on(20, d1), 92.5);
  EXPECT_EQ(loaded->score_on(10, d2), 100.0);
  EXPECT_FALSE(loaded->score_on(20, d2).has_value());
  EXPECT_EQ(loaded->latest_score(10), 100.0);
}

TEST(Publish, EmptyStore) {
  core::LongitudinalStore store;
  TempDir dir;
  const auto written = core::publish_scores(store, dir.path.string());
  ASSERT_TRUE(written.has_value());
  EXPECT_EQ(*written, 0u);
  const auto loaded = core::load_scores(dir.path.string());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->as_count(), 0u);
}

TEST(Publish, LoadRejectsMissingDirectory) {
  EXPECT_FALSE(core::load_scores("/nonexistent/rovista-xyz").has_value());
}

TEST(Publish, LoadRejectsCorruptSnapshot) {
  core::LongitudinalStore store;
  store.record(util::Date::from_ymd(2022, 1, 1),
               std::vector<core::AsScore>{make_score(10, 50.0)});
  TempDir dir;
  ASSERT_TRUE(core::publish_scores(store, dir.path.string()).has_value());
  // Corrupt the snapshot file.
  std::ofstream f(dir.path / "scores-2022-01-01.csv");
  f << "asn,score\nnot_a_number,oops\n";
  f.close();
  EXPECT_FALSE(core::load_scores(dir.path.string()).has_value());
}

TEST(Publish, LoadRejectsBadIndexDate) {
  TempDir dir;
  fs::create_directories(dir.path);
  std::ofstream f(dir.path / "index.csv");
  f << "date,ases_scored\nnot-a-date,1\n";
  f.close();
  EXPECT_FALSE(core::load_scores(dir.path.string()).has_value());
}

TEST(Publish, LoadFailureNamesFileAndLine) {
  // A refused dataset must say *which* file and line broke, through the
  // logging sink — a bare nullopt is undiagnosable at paper scale.
  core::LongitudinalStore store;
  store.record(util::Date::from_ymd(2022, 1, 1),
               std::vector<core::AsScore>{make_score(10, 50.0)});
  TempDir dir;
  ASSERT_TRUE(core::publish_scores(store, dir.path.string()).has_value());
  {
    std::ofstream f(dir.path / "scores-2022-01-01.csv");
    f << "asn,score,vvp_count,tnodes_consistent,tnodes_outbound\n"
      << "10,50.00,0,0,0\n"
      << "not_a_number,oops,0,0,0\n";
  }

  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  util::set_log_sink(sink);
  EXPECT_FALSE(core::load_scores(dir.path.string()).has_value());
  util::set_log_sink(nullptr);

  std::string log;
  std::rewind(sink);
  char buf[512];
  while (std::fgets(buf, sizeof buf, sink) != nullptr) log += buf;
  std::fclose(sink);
  EXPECT_NE(log.find("scores-2022-01-01.csv:3"), std::string::npos) << log;
  EXPECT_NE(log.find("not_a_number"), std::string::npos) << log;
}

}  // namespace
