// The RQP query server (src/serve): ephemeral-port startup, per-opcode
// answers against a synthetic feed, reachability served from a pinned
// epoch vs. a direct traceroute on the same frozen world, protocol
// violations, graceful stop (in-flight responses flushed), warm-start
// seeding, and a loadgen smoke run.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/longitudinal.h"
#include "core/scoring.h"
#include "dataplane/traceroute.h"
#include "round_fixture.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "snapshot/epoch_publisher.h"
#include "snapshot/world_source.h"
#include "util/csv.h"

namespace {

using namespace rovista;
using namespace rovista::serve;
using namespace std::chrono_literals;

std::vector<core::AsScore> synthetic_scores() {
  std::vector<core::AsScore> scores;
  for (std::uint32_t i = 0; i < 8; ++i) {
    core::AsScore s;
    s.asn = 64500 + i * 3;
    s.score = static_cast<double>(i) / 8.0;
    s.vvp_count = 2 + i;
    s.tnodes_consistent = i;
    s.tnodes_outbound = 1;
    scores.push_back(s);
  }
  return scores;
}

struct TestServer {
  std::shared_ptr<ScoreFeed> feed = std::make_shared<ScoreFeed>();
  std::unique_ptr<Server> server;

  explicit TestServer(int workers = 2) {
    ServerOptions options;
    options.port = 0;  // the ephemeral-port contract under test
    options.workers = workers;
    server = std::make_unique<Server>(options, feed);
  }
  ~TestServer() { server->stop(); }
};

Request make_request(Opcode op, std::uint32_t id, std::uint32_t asn = 0) {
  Request request;
  request.opcode = op;
  request.request_id = id;
  request.asn = asn;
  return request;
}

TEST(Serve, EphemeralPortAndPingThroughWarmup) {
  TestServer ts;
  ASSERT_TRUE(ts.server->start());
  EXPECT_NE(ts.server->port(), 0) << "port 0 must rebind to a real port";

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.server->port()));

  // Before the first publish: PING succeeds, sequence 0 = warming up.
  Response response;
  ASSERT_TRUE(client.call(make_request(Opcode::kPing, 1), response));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.epoch_sequence, 0u);
  EXPECT_EQ(response.as_count, 0u);

  // SCORE during warmup: NO_DATA, not a hang or a close.
  ASSERT_TRUE(client.call(make_request(Opcode::kScore, 2, 64500), response));
  EXPECT_EQ(response.status, Status::kNoData);

  ts.feed->publish(util::Date::from_ymd(2021, 7, 25), synthetic_scores(),
                   snapshot::EpochRef());
  ASSERT_TRUE(client.call(make_request(Opcode::kPing, 3), response));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.epoch_sequence, 1u);
  EXPECT_EQ(response.as_count, 8u);
  EXPECT_EQ(response.rounds_completed, 1u);
}

TEST(Serve, ScoreTrajectoryAndAsnsAnswers) {
  TestServer ts;
  ASSERT_TRUE(ts.server->start());
  const auto scores = synthetic_scores();
  const util::Date d1 = util::Date::from_ymd(2021, 7, 25);
  const util::Date d2 = d1 + 30;
  ts.feed->publish(d1, scores, snapshot::EpochRef());
  auto later = scores;
  later[0].score = 1.0;
  ts.feed->publish(d2, later, snapshot::EpochRef());

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.server->port()));

  Response response;
  ASSERT_TRUE(client.call(make_request(Opcode::kScore, 1, 64500), response));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.asn, 64500u);
  EXPECT_EQ(response.score, 1.0);
  EXPECT_EQ(response.vvp_count, 2u);
  // The exact string core::publish_scores would write — the byte-compare
  // contract of the tier-1 concurrent-publish stage.
  EXPECT_EQ(response.score_str, util::fmt_double(1.0, 2));
  EXPECT_EQ(response.round_date_days,
            static_cast<std::int64_t>(d2.days_since_epoch()));

  ASSERT_TRUE(client.call(make_request(Opcode::kScore, 2, 1), response));
  EXPECT_EQ(response.status, Status::kUnknownAs);

  ASSERT_TRUE(
      client.call(make_request(Opcode::kTrajectory, 3, 64500), response));
  EXPECT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.trajectory.size(), 2u);
  EXPECT_EQ(response.trajectory[0].date_days, d1.days_since_epoch());
  EXPECT_EQ(response.trajectory[0].score, 0.0);
  EXPECT_EQ(response.trajectory[1].date_days, d2.days_since_epoch());
  EXPECT_EQ(response.trajectory[1].score, 1.0);

  ASSERT_TRUE(client.call(make_request(Opcode::kAsns, 4), response));
  EXPECT_EQ(response.status, Status::kOk);
  ASSERT_EQ(response.asns.size(), 8u);
  EXPECT_EQ(response.asns.front(), 64500u);
  EXPECT_TRUE(std::is_sorted(response.asns.begin(), response.asns.end()));
}

TEST(Serve, ReachMatchesDirectTracerouteOnSameEpoch) {
  // Publish a real (small) world and compare the server's REACH answer
  // with a traceroute run directly on a private reader of the same
  // epoch: both stamp fresh host state off the frozen template, so the
  // AS paths must agree hop for hop.
  snapshot::EpochPublisher publisher(testfx::round_params());
  publisher.advance_to(publisher.world().start() + 60);
  snapshot::EpochRef epoch = publisher.publish();

  const topology::Asn from_as = epoch.world().client_as_a();
  const net::Ipv4Address dst = epoch.world().client_addr_b();

  TestServer ts;
  ASSERT_TRUE(ts.server->start());
  std::vector<core::AsScore> scores;
  core::AsScore s;
  s.asn = from_as;
  s.score = 1.0;
  scores.push_back(s);
  ts.feed->publish(util::Date::from_ymd(2021, 9, 23), scores, epoch);

  const auto direct = dataplane::tcp_traceroute(
      snapshot::make_reader(epoch)->plane(), from_as, dst, 80);

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.server->port()));
  Request request = make_request(Opcode::kReach, 7, from_as);
  request.dst = dst.value();
  request.port = 80;
  Response response;
  ASSERT_TRUE(client.call(request, response));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.reached, direct.reached ? 1 : 0);
  ASSERT_EQ(response.hops.size(), direct.hops.size());
  for (std::size_t i = 0; i < direct.hops.size(); ++i) {
    EXPECT_EQ(response.hops[i], direct.hops[i]) << "hop " << i;
  }
  EXPECT_EQ(response.world_digest, 0u);  // digest only fills PING

  // An AS outside the graph is UNKNOWN_AS, not a crash.
  Request bogus = make_request(Opcode::kReach, 8, 4200000000u);
  ASSERT_TRUE(client.call(bogus, response));
  EXPECT_EQ(response.status, Status::kUnknownAs);
}

TEST(Serve, MalformedPayloadAnswersBadRequestAndOversizeCloses) {
  TestServer ts;
  ASSERT_TRUE(ts.server->start());
  ts.feed->publish(util::Date::from_ymd(2021, 7, 25), synthetic_scores(),
                   snapshot::EpochRef());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  // A framed-but-garbage payload gets a BAD_REQUEST answer.
  std::vector<std::uint8_t> wire;
  append_frame(wire, std::vector<std::uint8_t>{0xff, 0xff, 0xff});
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  FrameDecoder decoder(kMaxResponseFrame);
  std::optional<std::vector<std::uint8_t>> payload;
  std::uint8_t buf[512];
  while (!payload.has_value()) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    ASSERT_GT(n, 0) << "connection closed before the error response";
    decoder.append({buf, static_cast<std::size_t>(n)});
    payload = decoder.next();
  }
  const auto response = parse_response(*payload);
  ASSERT_TRUE(response.has_value());
  EXPECT_EQ(response->opcode, Opcode::kNone);
  EXPECT_EQ(response->status, Status::kBadRequest);

  // A frame over the request cap poisons the connection: the server
  // must close it (after flushing earlier responses, here none).
  std::vector<std::uint8_t> oversize;
  append_frame(oversize, std::vector<std::uint8_t>(kMaxRequestFrame + 1, 0));
  ASSERT_EQ(::send(fd, oversize.data(), oversize.size(), 0),
            static_cast<ssize_t>(oversize.size()));
  ssize_t n = 0;
  do {
    n = ::recv(fd, buf, sizeof buf, 0);
  } while (n > 0);
  EXPECT_EQ(n, 0) << "server must close on an oversize frame";
  ::close(fd);
}

TEST(Serve, GracefulStopFlushesInFlightResponses) {
  TestServer ts;
  ASSERT_TRUE(ts.server->start());
  ts.feed->publish(util::Date::from_ymd(2021, 7, 25), synthetic_scores(),
                   snapshot::EpochRef());

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ts.server->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);

  // Pipeline a burst without reading, wait until the server has
  // *answered* all of them (frames_served), then stop. The graceful
  // drain must flush every queued response before closing.
  constexpr std::uint64_t kBurst = 64;
  std::vector<std::uint8_t> wire;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    append_frame(wire, encode_request(make_request(Opcode::kScore, i, 64500)));
  }
  ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (ts.server->io().frames_served() < kBurst &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_GE(ts.server->io().frames_served(), kBurst);
  ts.server->stop();

  FrameDecoder decoder(kMaxResponseFrame);
  std::uint64_t got = 0;
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n <= 0) break;
    decoder.append({buf, static_cast<std::size_t>(n)});
    for (;;) {
      const auto payload = decoder.next();
      if (!payload.has_value()) break;
      const auto response = parse_response(*payload);
      ASSERT_TRUE(response.has_value());
      EXPECT_EQ(response->status, Status::kOk);
      ++got;
    }
  }
  EXPECT_EQ(got, kBurst) << "drain must flush every in-flight response";
  ::close(fd);
}

TEST(Serve, WarmStartServesRestoredStore) {
  core::LongitudinalStore store;
  const auto scores = synthetic_scores();
  const util::Date d1 = util::Date::from_ymd(2021, 7, 25);
  store.record(d1, scores);
  store.record(d1 + 30, scores);

  TestServer ts;
  ts.feed->seed_from_store(store);
  ASSERT_TRUE(ts.server->start());

  BlockingClient client;
  ASSERT_TRUE(client.connect("127.0.0.1", ts.server->port()));
  Response response;
  ASSERT_TRUE(client.call(make_request(Opcode::kScore, 1, 64500), response));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.score_str, util::fmt_double(0.0, 2));
  EXPECT_EQ(response.vvp_count, 0u);  // counters not retained by the store

  ASSERT_TRUE(
      client.call(make_request(Opcode::kTrajectory, 2, 64500), response));
  EXPECT_EQ(response.status, Status::kOk);
  EXPECT_EQ(response.trajectory.size(), 2u);

  // No live epoch yet: reachability reports NO_DATA, not garbage.
  ASSERT_TRUE(client.call(make_request(Opcode::kReach, 3, 64500), response));
  EXPECT_EQ(response.status, Status::kNoData);
}

TEST(Serve, LoadgenClosedLoopSmoke) {
  TestServer ts(/*workers=*/3);
  ASSERT_TRUE(ts.server->start());
  const util::Date d1 = util::Date::from_ymd(2021, 7, 25);
  ts.feed->publish(d1, synthetic_scores(), snapshot::EpochRef());

  LoadgenOptions options;
  options.port = ts.server->port();
  options.requests = 400;
  options.connections = 6;
  options.threads = 3;
  options.trajectory_fraction = 0.25;
  options.record = true;
  options.seed = 7;
  const LoadgenResult result = run_loadgen(options);

  EXPECT_EQ(result.sent, 400u);
  EXPECT_EQ(result.received, 400u);
  EXPECT_EQ(result.ok, 400u);
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_EQ(result.min_epoch_sequence, 1u);
  EXPECT_EQ(result.max_epoch_sequence, 1u);
  EXPECT_GT(result.records.size(), 0u);
  for (const ScoreRecord& record : result.records) {
    EXPECT_EQ(record.date_days, d1.days_since_epoch());
  }
  EXPECT_GE(result.p99_ms, result.p50_ms);
}

}  // namespace
