// rovista — command-line front end.
//
// Subcommands:
//   measure  --seed N --date YYYY-MM-DD --out DIR
//            run one full measurement round against a simulated Internet
//            and publish the per-AS scores as the daily CSV dataset
//   query    --dir DIR [--asn N]
//            query a published score dataset (latest scores, or one AS's
//            full series)
//   audit    --seed N --asn N [--date YYYY-MM-DD]
//            audit one AS: score, per-tNode verdicts, leak paths
//   longitudinal
//            --seed N --rounds N [--interval-days N] [--threads N]
//            [--incremental on|off] [--out FILE] [--publish DIR]
//            run a dated sequence of rounds through the incremental
//            engine (or full recompute per round with --incremental
//            off) and emit a per-round CSV series
//
// Everything is deterministic in --seed; see README.md for the library
// behind it.
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <string>

#include <fstream>

#include "bgp/mrt.h"
#include "core/incremental_runner.h"
#include "core/publish.h"
#include "core/rovista.h"
#include "dataplane/traceroute.h"
#include "scenario/scenario.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace rovista;

struct Args {
  std::map<std::string, std::string> options;

  const char* get(const char* key, const char* fallback = nullptr) const {
    const auto it = options.find(key);
    return it != options.end() ? it->second.c_str() : fallback;
  }
};

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) == 0) {
      args.options[argv[i] + 2] = argv[i + 1];
    }
  }
  return args;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rovista <command> [options]\n"
      "  measure --seed N --date YYYY-MM-DD --out DIR [--mrt FILE]\n"
      "          [--threads N]\n"
      "          run one round, publish scores, optionally archive the\n"
      "          collector table as an MRT TABLE_DUMP_V2 file;\n"
      "          --threads shards the round by vVP across worker\n"
      "          replicas (output bit-identical for any count >= 1,\n"
      "          see DESIGN.md)\n"
      "  query   --dir DIR [--asn N]                    read a dataset\n"
      "  audit   --seed N --asn N [--date YYYY-MM-DD]   audit one AS\n"
      "  longitudinal --seed N --rounds N [--interval-days N]\n"
      "          [--threads N] [--incremental on|off] [--out FILE]\n"
      "          [--publish DIR]\n"
      "          run a dated round sequence; VRP deltas drive dirty-\n"
      "          prefix recomputation and a reachability-aware score\n"
      "          cache unless --incremental off forces full recompute\n"
      "          per round (scores identical either way); the per-round\n"
      "          series goes to --out as CSV\n");
  return 2;
}

struct MeasuredWorld {
  scenario::ScenarioParams params;
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<scan::MeasurementClient> client_a;
  std::unique_ptr<scan::MeasurementClient> client_b;
  std::unique_ptr<core::Rovista> rovista;
  std::vector<scan::Tnode> tnodes;
};

MeasuredWorld build_world(std::uint64_t seed, util::Date date,
                          int num_threads = 0) {
  MeasuredWorld world;
  scenario::ScenarioParams params;
  params.seed = seed;
  world.params = params;
  world.scenario = std::make_unique<scenario::Scenario>(std::move(params));
  if (date < world.scenario->start()) date = world.scenario->start();
  if (date > world.scenario->end()) date = world.scenario->end();
  world.scenario->advance_to(date);
  world.client_a = std::make_unique<scan::MeasurementClient>(
      world.scenario->plane(), world.scenario->client_as_a(),
      world.scenario->client_addr_a());
  world.client_b = std::make_unique<scan::MeasurementClient>(
      world.scenario->plane(), world.scenario->client_as_b(),
      world.scenario->client_addr_b());
  core::RovistaConfig config;
  config.scoring.min_vvps_per_as = 2;
  config.scoring.min_tnodes = 3;
  config.num_threads = num_threads;
  world.rovista = std::make_unique<core::Rovista>(
      world.scenario->plane(), *world.client_a, *world.client_b, config);
  const auto view =
      world.scenario->collector().snapshot(world.scenario->routing());
  world.tnodes = world.rovista->acquire_tnodes(
      view, world.scenario->current_vrps(),
      world.scenario->rov_reference_ases(date, 10),
      world.scenario->non_rov_reference_ases(date, 10));
  return world;
}

int cmd_measure(const Args& args) {
  const char* out = args.get("out");
  if (out == nullptr) return usage();
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  util::Date date = util::Date::from_ymd(2023, 9, 12);
  if (const char* d = args.get("date")) util::Date::parse(d, date);
  std::uint64_t threads = 0;
  if (const char* t = args.get("threads")) util::parse_u64(t, threads);

  std::printf("building world (seed %llu) ...\n",
              static_cast<unsigned long long>(seed));
  MeasuredWorld world = build_world(seed, date, static_cast<int>(threads));
  std::printf("tNodes: %zu\n", world.tnodes.size());
  const auto vvps =
      world.rovista->acquire_vvps(world.scenario->vvp_candidates());
  std::printf("vVPs: %zu\n", vvps.size());
  core::MeasurementRound round;
  if (threads >= 1) {
    // Replica engine for any explicit --threads (including 1, so thread
    // counts stay comparable): vVP-sharded workers on private replica
    // worlds, bit-identical output regardless of the count. Without
    // --threads the round runs serially on the shared discovery world.
    std::printf("measuring with %llu worker threads\n",
                static_cast<unsigned long long>(threads));
    const auto factory = scenario::make_replica_factory(
        world.params, world.scenario->current());
    round = world.rovista->run_round_parallel(factory, vvps, world.tnodes);
  } else {
    round = world.rovista->run_round(vvps, world.tnodes);
  }
  std::printf("experiments: %zu, ASes scored: %zu\n", round.experiments_run,
              round.scores.size());

  core::LongitudinalStore store;
  store.record(world.scenario->current(), round.scores);
  const auto written = core::publish_scores(store, out);
  if (!written.has_value()) {
    std::fprintf(stderr, "error: could not write %s\n", out);
    return 1;
  }
  std::printf("published %zu snapshot(s) under %s\n", *written, out);

  // Also archive the collector's table the way RouteViews would: an MRT
  // TABLE_DUMP_V2 file next to the score dataset.
  if (const char* mrt_path = args.get("mrt")) {
    const auto view =
        world.scenario->collector().snapshot(world.scenario->routing());
    const auto bytes = bgp::mrt::export_table_dump(
        view, static_cast<std::uint32_t>(
                  world.scenario->current().days_since_epoch() * 86400));
    std::ofstream f(mrt_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (f) {
      std::printf("wrote MRT table dump (%zu bytes, %zu entries) to %s\n",
                  bytes.size(), view.entries.size(), mrt_path);
    } else {
      std::fprintf(stderr, "error: could not write %s\n", mrt_path);
      return 1;
    }
  }
  return 0;
}

int cmd_query(const Args& args) {
  const char* dir = args.get("dir");
  if (dir == nullptr) return usage();
  const auto store = core::load_scores(dir);
  if (!store.has_value()) {
    std::fprintf(stderr, "error: no dataset at %s\n", dir);
    return 1;
  }
  if (const char* asn_str = args.get("asn")) {
    std::uint64_t asn = 0;
    if (!util::parse_u64(asn_str, asn)) return usage();
    const auto series = store->series(static_cast<core::Asn>(asn));
    if (series.empty()) {
      std::printf("AS%llu: no measurements\n",
                  static_cast<unsigned long long>(asn));
      return 0;
    }
    for (const auto& [date, score] : series) {
      std::printf("%s  AS%llu  %.2f%%\n", date.to_string().c_str(),
                  static_cast<unsigned long long>(asn), score);
    }
    return 0;
  }
  util::Table table({"ASN", "latest score"});
  for (const auto asn : store->ases()) {
    const auto score = store->latest_score(asn);
    table.add_row({std::to_string(asn),
                   score ? util::fmt_double(*score, 2) + "%" : "-"});
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

int cmd_audit(const Args& args) {
  const char* asn_str = args.get("asn");
  if (asn_str == nullptr) return usage();
  std::uint64_t asn64 = 0;
  if (!util::parse_u64(asn_str, asn64)) return usage();
  const auto asn = static_cast<core::Asn>(asn64);
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  util::Date date = util::Date::from_ymd(2023, 9, 12);
  if (const char* d = args.get("date")) util::Date::parse(d, date);

  MeasuredWorld world = build_world(seed, date);
  auto& s = *world.scenario;
  if (!s.graph().contains(asn)) {
    std::fprintf(stderr, "error: AS%u does not exist in this world\n", asn);
    return 1;
  }

  std::vector<net::Ipv4Address> candidates;
  for (const auto addr : s.vvp_candidates()) {
    if (s.plane().as_of(addr) == asn) candidates.push_back(addr);
  }
  const auto vvps = world.rovista->acquire_vvps(candidates);
  if (vvps.empty()) {
    std::printf("AS%u has no usable vVPs — unmeasurable from outside\n",
                asn);
    return 0;
  }
  const auto round = world.rovista->run_round(vvps, world.tnodes);
  for (const auto& score : round.scores) {
    if (score.asn != asn) continue;
    std::printf("AS%u ROV protection score: %.1f%% (%d vVPs, %d tNodes)\n",
                asn, score.score, score.vvp_count, score.tnodes_consistent);
    if (score.score < 100.0) {
      std::printf("reachable RPKI-invalid destinations:\n");
      for (const auto& tnode : world.tnodes) {
        const auto tr = dataplane::tcp_traceroute(s.plane(), asn,
                                                  tnode.address, tnode.port);
        if (!tr.reached) continue;
        std::string path;
        for (const auto hop : tr.hops) {
          path += "AS" + std::to_string(hop) + " ";
        }
        std::printf("  %s via %s\n", tnode.address.to_string().c_str(),
                    path.c_str());
      }
    }
    return 0;
  }
  std::printf("AS%u: not enough conclusive measurements\n", asn);
  return 0;
}

int cmd_longitudinal(const Args& args) {
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  std::uint64_t rounds = 0;
  if (const char* r = args.get("rounds")) util::parse_u64(r, rounds);
  if (rounds == 0) return usage();
  std::uint64_t interval_days = 30;
  if (const char* i = args.get("interval-days")) {
    util::parse_u64(i, interval_days);
  }
  if (interval_days == 0) interval_days = 1;
  std::uint64_t threads = 0;
  if (const char* t = args.get("threads")) util::parse_u64(t, threads);
  const char* mode = args.get("incremental", "on");
  if (std::strcmp(mode, "on") != 0 && std::strcmp(mode, "off") != 0) {
    return usage();
  }

  core::IncrementalConfig config;
  config.params.seed = seed;
  config.rovista.scoring.min_vvps_per_as = 2;
  config.rovista.scoring.min_tnodes = 3;
  config.rovista.num_threads = static_cast<int>(threads);
  config.incremental = std::strcmp(mode, "on") == 0;

  util::Date date = config.params.start;
  if (const char* d = args.get("start")) util::Date::parse(d, date);

  std::printf("running %llu rounds (seed %llu, incremental %s) ...\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(seed), mode);
  core::IncrementalLongitudinalRunner runner(config);
  std::string csv =
      "date,events,vrp_announced,vrp_withdrawn,dirty_prefixes,"
      "discovery_reused,dirty_rows,total_rows,executed_pairs,reused_pairs,"
      "ases_scored\n";
  for (std::uint64_t i = 0; i < rounds; ++i) {
    util::Date end = config.params.end;
    if (date > end) date = end;
    const core::RoundReport report = runner.run_round(date);
    std::printf(
        "%s  events=%zu vrp+%zu/-%zu dirty_prefixes=%zu rows %zu/%zu "
        "pairs %zu run / %zu cached  ases=%zu\n",
        report.date.to_string().c_str(), report.events, report.vrp_announced,
        report.vrp_withdrawn, report.dirty_prefix_count, report.dirty_rows,
        report.total_rows, report.executed_pairs, report.reused_pairs,
        report.round.scores.size());
    csv += report.date.to_string() + ',' + std::to_string(report.events) +
           ',' + std::to_string(report.vrp_announced) + ',' +
           std::to_string(report.vrp_withdrawn) + ',' +
           std::to_string(report.dirty_prefix_count) + ',' +
           (report.discovery_reused ? "1" : "0") + ',' +
           std::to_string(report.dirty_rows) + ',' +
           std::to_string(report.total_rows) + ',' +
           std::to_string(report.executed_pairs) + ',' +
           std::to_string(report.reused_pairs) + ',' +
           std::to_string(report.round.scores.size()) + '\n';
    date = date + static_cast<int>(interval_days);
  }

  if (const char* out = args.get("out")) {
    std::ofstream f(out);
    f << csv;
    if (!f) {
      std::fprintf(stderr, "error: could not write %s\n", out);
      return 1;
    }
    std::printf("wrote round series to %s\n", out);
  } else {
    std::printf("%s", csv.c_str());
  }
  if (const char* publish = args.get("publish")) {
    const auto written = core::publish_scores(runner.store(), publish);
    if (!written.has_value()) {
      std::fprintf(stderr, "error: could not write %s\n", publish);
      return 1;
    }
    std::printf("published %zu snapshot(s) under %s\n", *written, publish);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const Args args = parse_args(argc, argv, 2);
  if (std::strcmp(argv[1], "measure") == 0) return cmd_measure(args);
  if (std::strcmp(argv[1], "query") == 0) return cmd_query(args);
  if (std::strcmp(argv[1], "audit") == 0) return cmd_audit(args);
  if (std::strcmp(argv[1], "longitudinal") == 0) {
    return cmd_longitudinal(args);
  }
  return usage();
}
