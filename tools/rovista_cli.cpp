// rovista — command-line front end.
//
// Subcommands:
//   measure  --seed N --date YYYY-MM-DD --out DIR
//            run one full measurement round against a simulated Internet
//            and publish the per-AS scores as the daily CSV dataset
//   query    --dir DIR [--asn N]
//            query a published score dataset (latest scores, or one AS's
//            full series)
//   audit    --seed N --asn N [--date YYYY-MM-DD]
//            audit one AS: score, per-tNode verdicts, leak paths
//   longitudinal
//            --seed N --rounds N [--interval-days N] [--threads N]
//            [--incremental on|off] [--out FILE] [--publish DIR]
//            run a dated sequence of rounds through the incremental
//            engine (or full recompute per round with --incremental
//            off) and emit a per-round CSV series
//   serve    --seed N --rounds N [--port P] [--workers N] ...
//            long-lived RQP query daemon: answers score / trajectory /
//            reachability queries over live epoch snapshots while the
//            incremental engine publishes rounds behind it
//   loadgen  --port P [--requests N] [--connections N] ...
//            open- or closed-loop load generator for a serve daemon
//   feedcheck --record FILE --published DIR
//            byte-compare a loadgen score record against a published
//            CSV dataset (the torn-read oracle of the tier-1 stage)
//
// Everything is deterministic in --seed; see README.md for the library
// behind it.
#include <signal.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <exception>
#include <map>
#include <optional>
#include <string>
#include <thread>

#include <fstream>

#include <cstdlib>

#include "analytics/queries.h"
#include "bgp/mrt.h"
#include "core/incremental_runner.h"
#include "core/publish.h"
#include "core/rovista.h"
#include "dataplane/traceroute.h"
#include "persist/checkpoint.h"
#include "persist/checkpoint_io.h"
#include "persist/wire.h"
#include "scenario/scenario.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "snapshot/world_source.h"
#include "util/csv.h"
#include "util/strings.h"

namespace {

using namespace rovista;

struct Args {
  std::map<std::string, std::string> options;

  const char* get(const char* key, const char* fallback = nullptr) const {
    const auto it = options.find(key);
    return it != options.end() ? it->second.c_str() : fallback;
  }
  bool has(const char* key) const { return options.count(key) != 0; }
};

Args parse_args(int argc, char** argv, int from) {
  Args args;
  for (int i = from; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    // A flag followed by another flag (or nothing) is a bare switch,
    // e.g. --resume; otherwise the next token is its value.
    if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
      args.options[argv[i] + 2] = argv[i + 1];
      ++i;
    } else {
      args.options[argv[i] + 2] = "";
    }
  }
  return args;
}

/// --engine snapshot|replica (default snapshot): which world engine
/// backs parallel measurement (snapshot/world_source.h). Output is
/// engine-invariant; the flag exists so the tier-1 equivalence stages
/// can byte-diff the two. Returns nullopt on a bad value.
std::optional<snapshot::EngineMode> parse_engine(const Args& args) {
  const char* engine = args.get("engine", "snapshot");
  if (std::strcmp(engine, "snapshot") == 0) {
    return snapshot::EngineMode::kSnapshot;
  }
  if (std::strcmp(engine, "replica") == 0) {
    return snapshot::EngineMode::kReplica;
  }
  std::fprintf(stderr, "error: --engine must be snapshot or replica\n");
  return std::nullopt;
}

/// --topology caida:FILE | synthetic:FACTOR (default synthetic:1).
/// caida: loads a CAIDA serial-2 as-rel file (docs/FORMATS.md section 4)
/// instead of generating a world. synthetic:FACTOR scales the generated
/// world: transit and stub counts multiply by FACTOR while the peer-edge
/// densities divide by it, holding per-AS peer degree (and so total edge
/// count) roughly linear in FACTOR. synthetic:1 is the standard paper
/// world, byte-identical to omitting the flag.
bool parse_topology(const Args& args, scenario::ScenarioParams& params) {
  const char* t = args.get("topology");
  if (t == nullptr) return true;
  const std::string value = t;
  if (value.rfind("caida:", 0) == 0) {
    const std::string path = value.substr(6);
    if (path.empty()) {
      std::fprintf(stderr, "error: --topology caida: needs a file path\n");
      return false;
    }
    params.topology.caida_path = path;
    return true;
  }
  if (value.rfind("synthetic:", 0) == 0) {
    std::uint64_t factor = 0;
    if (!util::parse_u64(value.c_str() + 10, factor) || factor < 1 ||
        factor > 64) {
      std::fprintf(stderr,
                   "error: --topology synthetic: factor must be 1..64\n");
      return false;
    }
    const int f = static_cast<int>(factor);
    params.topology.tier2_count *= f;
    params.topology.tier3_count *= f;
    params.topology.stub_count *= f;
    params.topology.tier2_peer_prob /= f;
    params.topology.tier3_peer_prob /= f;
    return true;
  }
  std::fprintf(stderr,
               "error: --topology must be caida:FILE or synthetic:FACTOR\n");
  return false;
}

/// --propagation auto|fixed-point|flat (default auto): which route
/// propagation engine the discovery world uses (bgp/routing_system.h).
/// Outputs are engine-invariant — the flat engine is certified
/// bit-identical per prefix or falls back — so this is a performance
/// and diagnostics knob, like --engine.
std::optional<bgp::PropagationEngine> parse_propagation(const Args& args) {
  const char* v = args.get("propagation", "auto");
  if (std::strcmp(v, "auto") == 0) return bgp::PropagationEngine::kAuto;
  if (std::strcmp(v, "fixed-point") == 0) {
    return bgp::PropagationEngine::kFixedPoint;
  }
  if (std::strcmp(v, "flat") == 0) return bgp::PropagationEngine::kFlat;
  std::fprintf(stderr,
               "error: --propagation must be auto, fixed-point or flat\n");
  return std::nullopt;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: rovista <command> [options]\n"
      "  measure --seed N --date YYYY-MM-DD --out DIR [--mrt FILE]\n"
      "          [--threads N] [--engine snapshot|replica]\n"
      "          [--topology caida:FILE|synthetic:FACTOR]\n"
      "          [--propagation auto|fixed-point|flat]\n"
      "          run one round, publish scores, optionally archive the\n"
      "          collector table as an MRT TABLE_DUMP_V2 file;\n"
      "          --threads shards the round by vVP across worker\n"
      "          replicas (output bit-identical for any count >= 1 and\n"
      "          either engine, see DESIGN.md); --engine picks the world\n"
      "          engine: snapshot (default, one immutable epoch shared\n"
      "          by all workers) or replica (full private world each);\n"
      "          --topology swaps the simulated Internet: a CAIDA\n"
      "          serial-2 as-rel file (docs/FORMATS.md section 4) or a\n"
      "          scaled synthetic world (FACTOR 1..64 multiplies transit\n"
      "          and stub counts; measure worlds cap at ~32.5k ASes —\n"
      "          factor <= 6 on default tiers); --propagation picks the\n"
      "          route engine\n"
      "          (auto switches to the rank-flattened engine at 8192+\n"
      "          ASes; scores are engine-invariant, see DESIGN.md)\n"
      "  query   --dir DIR [--asn N]                    read a dataset\n"
      "  audit   --seed N --asn N [--date YYYY-MM-DD]   audit one AS\n"
      "  longitudinal --seed N --rounds N [--interval-days N]\n"
      "          [--start YYYY-MM-DD] [--threads N] [--incremental on|off]\n"
      "          [--engine snapshot|replica] [--out FILE]\n"
      "          [--publish DIR] [--scale small|paper]\n"
      "          [--slurm-fraction F]\n"
      "          [--rp-failure-rate F] [--rp-divergence-fraction F]\n"
      "          [--rtr-drop-rate F]\n"
      "          [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]\n"
      "          [--archive DIR] [--die-after N]\n"
      "          run a dated round sequence; VRP deltas drive dirty-\n"
      "          prefix recomputation and a reachability-aware score\n"
      "          cache unless --incremental off forces full recompute\n"
      "          per round (scores identical either way); the per-round\n"
      "          series goes to --out as CSV. With --checkpoint-dir the\n"
      "          series writes crash-safe RVCP checkpoints (see\n"
      "          docs/FORMATS.md) and --resume continues an interrupted\n"
      "          series bit-identically. The fault knobs inject RPKI\n"
      "          supply-chain failures (RP crashes serving stale VRPs,\n"
      "          RTR session drops/corrupt PDUs, divergent RP\n"
      "          implementations); all default to 0, which leaves every\n"
      "          output byte-identical to a fault-free run. --archive\n"
      "          appends every completed round as one durable RVLA frame\n"
      "          (docs/FORMATS.md section 5) for `rovista analyze`.\n"
      "          --die-after is the crash-safety test hook: _Exit(137)\n"
      "          after N completed rounds, skipping destructors\n"
      "  analyze --archive DIR\n"
      "          [--query info|latest-cdf|fraction-trend|series|jumps|churn]\n"
      "          [--threshold T] [--asn N] [--low L] [--high H]\n"
      "          [--out FILE] [--publish DIR]\n"
      "          stream the paper's longitudinal queries straight off an\n"
      "          RVLA archive — no in-memory store, memory stays O(ASes)\n"
      "          regardless of round count. latest-cdf = Fig. 5 CDF of\n"
      "          each AS's latest score; fraction-trend = Fig. 6 fraction\n"
      "          of ASes at or above --threshold (default 100) per date;\n"
      "          series = one AS's full (date, score) trajectory (--asn);\n"
      "          jumps = section-7.3 scans for scores moving from\n"
      "          <= --low (default 0) to >= --high (default 100) between\n"
      "          consecutive rounds; churn = per-transition change\n"
      "          aggregates. Answers are bit-identical to the in-memory\n"
      "          LongitudinalStore (tier-1 byte-compares them). CSV goes\n"
      "          to stdout or --out; --publish re-emits the section-2\n"
      "          dataset byte-identically to `longitudinal --publish`\n"
      "  checkpoint inspect (--dir DIR | --file FILE)\n"
      "          print the header, section table and integrity verdict\n"
      "          of a checkpoint without restoring it\n"
      "  serve   --seed N --rounds N [--interval-days N]\n"
      "          [--start YYYY-MM-DD]\n"
      "          [--scale small|paper] [--port P] [--workers N]\n"
      "          [--threads N] [--publish DIR] [--warn-depth N]\n"
      "          [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]\n"
      "          [--archive DIR]\n"
      "          start the RQP v1 query daemon (docs/FORMATS.md section 3)\n"
      "          on 127.0.0.1 (--port 0 = kernel-assigned; the bound port\n"
      "          is announced as 'LISTENING <port>' on stdout), run the\n"
      "          round series behind it, then keep serving until SIGTERM\n"
      "          (graceful: in-flight responses are flushed). --resume\n"
      "          warm-starts scores/trajectories from an RVCP checkpoint;\n"
      "          --publish writes the CSV dataset once the series ends\n"
      "          and announces 'PUBLISHED <dir>'; --warn-depth enables\n"
      "          the pin-leak diagnostic on the epoch chain; --archive\n"
      "          appends rounds to an RVLA archive and, without --resume,\n"
      "          warm-starts scores/trajectories from it when it already\n"
      "          holds rounds\n"
      "  loadgen --port P [--host H] [--requests N] [--connections N]\n"
      "          [--threads N] [--rate R] [--pipeline N]\n"
      "          [--traj-fraction F] [--reach-fraction F] [--seed N]\n"
      "          [--reach-dst ADDR32] [--reach-port P]\n"
      "          [--timeout-ms N] [--record FILE] [--json FILE]\n"
      "          drive a serve daemon: open-loop at --rate req/s, or\n"
      "          closed-loop at --pipeline outstanding per connection;\n"
      "          --record captures every OK score response for feedcheck;\n"
      "          --reach-dst/--reach-port pin reachability queries to one\n"
      "          numeric IPv4 destination instead of sampled tNodes\n"
      "  feedcheck --record FILE --published DIR\n"
      "          verify a loadgen record byte-for-byte against a\n"
      "          published dataset: every served score must equal the\n"
      "          published score of its own round's date\n");
  return 2;
}

struct MeasuredWorld {
  scenario::ScenarioParams params;
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<scan::MeasurementClient> client_a;
  std::unique_ptr<scan::MeasurementClient> client_b;
  std::unique_ptr<core::Rovista> rovista;
  std::vector<scan::Tnode> tnodes;
};

MeasuredWorld build_world(scenario::ScenarioParams params, util::Date date,
                          int num_threads = 0,
                          bgp::PropagationEngine propagation =
                              bgp::PropagationEngine::kAuto) {
  MeasuredWorld world;
  world.params = params;
  world.scenario = std::make_unique<scenario::Scenario>(std::move(params));
  world.scenario->routing().set_propagation_engine(propagation);
  if (date < world.scenario->start()) date = world.scenario->start();
  if (date > world.scenario->end()) date = world.scenario->end();
  world.scenario->advance_to(date);
  world.client_a = std::make_unique<scan::MeasurementClient>(
      world.scenario->plane(), world.scenario->client_as_a(),
      world.scenario->client_addr_a());
  world.client_b = std::make_unique<scan::MeasurementClient>(
      world.scenario->plane(), world.scenario->client_as_b(),
      world.scenario->client_addr_b());
  core::RovistaConfig config;
  config.scoring.min_vvps_per_as = 2;
  config.scoring.min_tnodes = 3;
  config.num_threads = num_threads;
  world.rovista = std::make_unique<core::Rovista>(
      world.scenario->plane(), *world.client_a, *world.client_b, config);
  const auto view =
      world.scenario->collector().snapshot(world.scenario->routing());
  world.tnodes = world.rovista->acquire_tnodes(
      view, world.scenario->current_vrps(),
      world.scenario->rov_reference_ases(date, 10),
      world.scenario->non_rov_reference_ases(date, 10));
  return world;
}

int cmd_measure(const Args& args) {
  const char* out = args.get("out");
  if (out == nullptr) return usage();
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  util::Date date = util::Date::from_ymd(2023, 9, 12);
  if (const char* d = args.get("date")) util::Date::parse(d, date);
  std::uint64_t threads = 0;
  if (const char* t = args.get("threads")) util::parse_u64(t, threads);
  const std::optional<snapshot::EngineMode> engine = parse_engine(args);
  if (!engine.has_value()) return usage();
  const std::optional<bgp::PropagationEngine> propagation =
      parse_propagation(args);
  if (!propagation.has_value()) return usage();
  scenario::ScenarioParams params;
  params.seed = seed;
  if (!parse_topology(args, params)) return usage();

  std::printf("building world (seed %llu) ...\n",
              static_cast<unsigned long long>(seed));
  MeasuredWorld world = build_world(std::move(params), date,
                                    static_cast<int>(threads), *propagation);
  std::printf("ASes: %zu, tNodes: %zu\n", world.scenario->graph().size(),
              world.tnodes.size());
  const auto vvps =
      world.rovista->acquire_vvps(world.scenario->vvp_candidates());
  std::printf("vVPs: %zu\n", vvps.size());
  core::MeasurementRound round;
  if (threads >= 1) {
    // Parallel for any explicit --threads (including 1, so thread
    // counts stay comparable): vVP-sharded workers on private worlds
    // from the one measurement factory (snapshot/world_source.h),
    // bit-identical output regardless of count or engine. Without
    // --threads the round runs serially on the shared discovery world.
    std::printf("measuring with %llu worker threads (%s engine)\n",
                static_cast<unsigned long long>(threads),
                snapshot::engine_mode_name(*engine));
    const auto factory = snapshot::make_measurement_factory(
        world.params, world.scenario->current(), *engine);
    round = world.rovista->run_round_parallel(factory, vvps, world.tnodes);
  } else {
    round = world.rovista->run_round(vvps, world.tnodes);
  }
  std::printf("experiments: %zu, ASes scored: %zu\n", round.experiments_run,
              round.scores.size());

  core::LongitudinalStore store;
  store.record(world.scenario->current(), round.scores);
  const auto written = core::publish_scores(store, out);
  if (!written.has_value()) {
    std::fprintf(stderr, "error: could not write %s\n", out);
    return 1;
  }
  std::printf("published %zu snapshot(s) under %s\n", *written, out);

  // Also archive the collector's table the way RouteViews would: an MRT
  // TABLE_DUMP_V2 file next to the score dataset.
  if (const char* mrt_path = args.get("mrt")) {
    const auto view =
        world.scenario->collector().snapshot(world.scenario->routing());
    const auto bytes = bgp::mrt::export_table_dump(
        view, static_cast<std::uint32_t>(
                  world.scenario->current().days_since_epoch() * 86400));
    std::ofstream f(mrt_path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (f) {
      std::printf("wrote MRT table dump (%zu bytes, %zu entries) to %s\n",
                  bytes.size(), view.entries.size(), mrt_path);
    } else {
      std::fprintf(stderr, "error: could not write %s\n", mrt_path);
      return 1;
    }
  }
  return 0;
}

int cmd_query(const Args& args) {
  const char* dir = args.get("dir");
  if (dir == nullptr) return usage();
  const auto store = core::load_scores(dir);
  if (!store.has_value()) {
    std::fprintf(stderr, "error: no dataset at %s\n", dir);
    return 1;
  }
  if (const char* asn_str = args.get("asn")) {
    std::uint64_t asn = 0;
    if (!util::parse_u64(asn_str, asn)) return usage();
    const auto series = store->series(static_cast<core::Asn>(asn));
    if (series.empty()) {
      std::printf("AS%llu: no measurements\n",
                  static_cast<unsigned long long>(asn));
      return 0;
    }
    for (const auto& [date, score] : series) {
      std::printf("%s  AS%llu  %.2f%%\n", date.to_string().c_str(),
                  static_cast<unsigned long long>(asn), score);
    }
    return 0;
  }
  util::Table table({"ASN", "latest score"});
  for (const auto asn : store->ases()) {
    const auto score = store->latest_score(asn);
    table.add_row({std::to_string(asn),
                   score ? util::fmt_double(*score, 2) + "%" : "-"});
  }
  std::printf("%s", table.to_text().c_str());
  return 0;
}

int cmd_audit(const Args& args) {
  const char* asn_str = args.get("asn");
  if (asn_str == nullptr) return usage();
  std::uint64_t asn64 = 0;
  if (!util::parse_u64(asn_str, asn64)) return usage();
  const auto asn = static_cast<core::Asn>(asn64);
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  util::Date date = util::Date::from_ymd(2023, 9, 12);
  if (const char* d = args.get("date")) util::Date::parse(d, date);

  scenario::ScenarioParams params;
  params.seed = seed;
  MeasuredWorld world = build_world(std::move(params), date);
  auto& s = *world.scenario;
  if (!s.graph().contains(asn)) {
    std::fprintf(stderr, "error: AS%u does not exist in this world\n", asn);
    return 1;
  }

  std::vector<net::Ipv4Address> candidates;
  for (const auto addr : s.vvp_candidates()) {
    if (s.plane().as_of(addr) == asn) candidates.push_back(addr);
  }
  const auto vvps = world.rovista->acquire_vvps(candidates);
  if (vvps.empty()) {
    std::printf("AS%u has no usable vVPs — unmeasurable from outside\n",
                asn);
    return 0;
  }
  const auto round = world.rovista->run_round(vvps, world.tnodes);
  for (const auto& score : round.scores) {
    if (score.asn != asn) continue;
    std::printf("AS%u ROV protection score: %.1f%% (%d vVPs, %d tNodes)\n",
                asn, score.score, score.vvp_count, score.tnodes_consistent);
    if (score.score < 100.0) {
      std::printf("reachable RPKI-invalid destinations:\n");
      for (const auto& tnode : world.tnodes) {
        const auto tr = dataplane::tcp_traceroute(s.plane(), asn,
                                                  tnode.address, tnode.port);
        if (!tr.reached) continue;
        std::string path;
        for (const auto hop : tr.hops) {
          path += "AS" + std::to_string(hop) + " ";
        }
        std::printf("  %s via %s\n", tnode.address.to_string().c_str(),
                    path.c_str());
      }
    }
    return 0;
  }
  std::printf("AS%u: not enough conclusive measurements\n", asn);
  return 0;
}

int cmd_longitudinal(const Args& args) {
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  std::uint64_t rounds = 0;
  if (const char* r = args.get("rounds")) util::parse_u64(r, rounds);
  if (rounds == 0) return usage();
  std::uint64_t interval_days = 30;
  if (const char* i = args.get("interval-days")) {
    util::parse_u64(i, interval_days);
  }
  if (interval_days == 0) interval_days = 1;
  std::uint64_t threads = 0;
  if (const char* t = args.get("threads")) util::parse_u64(t, threads);
  const char* mode = args.get("incremental", "on");
  if (std::strcmp(mode, "on") != 0 && std::strcmp(mode, "off") != 0) {
    return usage();
  }
  const char* scale = args.get("scale", "paper");
  if (std::strcmp(scale, "paper") != 0 && std::strcmp(scale, "small") != 0) {
    return usage();
  }

  const std::optional<snapshot::EngineMode> engine = parse_engine(args);
  if (!engine.has_value()) return usage();

  core::IncrementalConfig config;
  config.params.seed = seed;
  config.rovista.scoring.min_vvps_per_as = 2;
  config.rovista.scoring.min_tnodes = 3;
  config.rovista.num_threads = static_cast<int>(threads);
  config.incremental = std::strcmp(mode, "on") == 0;
  config.engine = *engine;
  if (std::strcmp(scale, "small") == 0) {
    // The tests' standard small world (tests/round_fixture.h) — fast
    // enough for CI series like the tier-1 kill/resume stage.
    config.params.topology.tier1_count = 4;
    config.params.topology.tier2_count = 14;
    config.params.topology.tier3_count = 36;
    config.params.topology.stub_count = 120;
    config.params.tnode_prefix_count = 4;
    config.params.measured_as_count = 12;
    config.params.hosts_per_measured_as = 3;
    config.params.collector_peer_count = 30;
    config.rovista.scoring.min_tnodes = 2;
  }
  if (const char* sf = args.get("slurm-fraction")) {
    // Fraction of ROV deployers carrying RFC 8416 local exceptions;
    // exercises the per-view delta-invalidation path of apply_vrp_delta.
    double slurm_fraction = 0.0;
    if (!util::parse_double(sf, slurm_fraction) || slurm_fraction < 0.0 ||
        slurm_fraction > 1.0) {
      std::fprintf(stderr, "error: --slurm-fraction must be in [0,1]\n");
      return usage();
    }
    config.params.slurm_fraction = slurm_fraction;
  }
  // Fault-injection knobs (faults/fault_schedule.h). All default to 0;
  // a knob-0 run splits no fault RNG stream and produces bytes identical
  // to a fault-free build.
  const auto parse_fault_rate = [&](const char* flag, double& out) -> bool {
    const char* v = args.get(flag);
    if (v == nullptr) return true;
    double rate = 0.0;
    if (!util::parse_double(v, rate) || rate < 0.0 || rate > 1.0) {
      std::fprintf(stderr, "error: --%s must be in [0,1]\n", flag);
      return false;
    }
    out = rate;
    return true;
  };
  if (!parse_fault_rate("rp-failure-rate",
                        config.params.faults.rp_failure_rate) ||
      !parse_fault_rate("rp-divergence-fraction",
                        config.params.faults.rp_divergence_fraction) ||
      !parse_fault_rate("rtr-drop-rate", config.params.faults.rtr_drop_rate)) {
    return usage();
  }
  const bool faulted = config.params.faults.enabled();

  util::Date start_date = config.params.start;
  if (const char* d = args.get("start")) util::Date::parse(d, start_date);

  // Round i measures at min(start + i * interval, scenario end) — the
  // closed form makes the date sequence a function of the round index,
  // so a resumed process recomputes exactly the dates it skips.
  const util::Date series_end = config.params.end;
  const auto round_date = [&](std::uint64_t i) {
    util::Date d = start_date + static_cast<int>(i * interval_days);
    if (d > series_end) d = series_end;
    return d;
  };

  if (args.has("checkpoint-dir")) {
    config.checkpoint_dir = args.get("checkpoint-dir", "");
    if (config.checkpoint_dir.empty()) return usage();
    std::uint64_t every = 1;
    if (const char* e = args.get("checkpoint-every")) {
      util::parse_u64(e, every);
    }
    config.checkpoint_every = static_cast<int>(every);
    // Series-shape guard: the engine digest covers the world and the
    // measurement config; this covers the CLI-level schedule, so a
    // checkpoint from a differently-paced series is refused on resume.
    persist::ByteWriter tag;
    tag.i64(start_date.days_since_epoch());
    tag.u64(interval_days);
    tag.u8(std::strcmp(scale, "small") == 0 ? 1 : 0);
    config.checkpoint_user_tag = persist::fnv1a64(tag.data());
  } else if (args.has("resume") || args.has("checkpoint-every")) {
    std::fprintf(stderr,
                 "error: --resume/--checkpoint-every need --checkpoint-dir\n");
    return usage();
  }
  if (args.has("archive")) {
    config.archive_dir = args.get("archive", "");
    if (config.archive_dir.empty()) return usage();
  }

  // Test hook for the tier-1 crash-safety stage: simulate a process
  // death (no destructors, no exit checkpoint) after N completed rounds.
  std::uint64_t die_after = 0;
  if (const char* d = args.get("die-after")) util::parse_u64(d, die_after);

  std::printf("running %llu rounds (seed %llu, incremental %s) ...\n",
              static_cast<unsigned long long>(rounds),
              static_cast<unsigned long long>(seed), mode);
  core::IncrementalLongitudinalRunner runner(config);

  std::uint64_t first_round = 0;
  if (args.has("resume")) {
    if (runner.resume_from_checkpoint()) {
      first_round = runner.completed_rounds();
      std::printf("resumed from checkpoint: %llu round(s) already done\n",
                  static_cast<unsigned long long>(first_round));
    } else {
      std::printf("no usable checkpoint — starting from scratch\n");
    }
  }

  // The degradation columns appear only in faulted runs, so a knob-0
  // series CSV stays byte-identical to a pre-fault build's.
  std::string csv =
      "date,events,vrp_announced,vrp_withdrawn,dirty_prefixes,"
      "discovery_reused,dirty_rows,total_rows,executed_pairs,reused_pairs,"
      "ases_scored";
  if (faulted) {
    csv +=
        ",stale_ases,expired_ases,diverged_ases,max_staleness_days,"
        "error_reports";
  }
  csv += '\n';
  for (std::uint64_t i = first_round; i < rounds; ++i) {
    const core::RoundReport report = runner.run_round(round_date(i));
    std::printf(
        "%s  events=%zu vrp+%zu/-%zu dirty_prefixes=%zu rows %zu/%zu "
        "pairs %zu run / %zu cached  ases=%zu\n",
        report.date.to_string().c_str(), report.events, report.vrp_announced,
        report.vrp_withdrawn, report.dirty_prefix_count, report.dirty_rows,
        report.total_rows, report.executed_pairs, report.reused_pairs,
        report.round.scores.size());
    if (faulted) {
      std::printf(
          "            chain health: stale=%llu expired=%llu diverged=%llu "
          "max_staleness=%lldd error_reports=%llu\n",
          static_cast<unsigned long long>(report.health.stale_ases),
          static_cast<unsigned long long>(report.health.expired_ases),
          static_cast<unsigned long long>(report.health.diverged_ases),
          static_cast<long long>(report.health.max_staleness_days),
          static_cast<unsigned long long>(report.health.error_reports));
    }
    csv += report.date.to_string() + ',' + std::to_string(report.events) +
           ',' + std::to_string(report.vrp_announced) + ',' +
           std::to_string(report.vrp_withdrawn) + ',' +
           std::to_string(report.dirty_prefix_count) + ',' +
           (report.discovery_reused ? "1" : "0") + ',' +
           std::to_string(report.dirty_rows) + ',' +
           std::to_string(report.total_rows) + ',' +
           std::to_string(report.executed_pairs) + ',' +
           std::to_string(report.reused_pairs) + ',' +
           std::to_string(report.round.scores.size());
    if (faulted) {
      csv += ',' + std::to_string(report.health.stale_ases) + ',' +
             std::to_string(report.health.expired_ases) + ',' +
             std::to_string(report.health.diverged_ases) + ',' +
             std::to_string(report.health.max_staleness_days) + ',' +
             std::to_string(report.health.error_reports);
    }
    csv += '\n';
    if (die_after > 0 && runner.completed_rounds() >= die_after) {
      // Death, not exit: skip destructors so nothing gets flushed or
      // checkpointed beyond what run_round already persisted.
      std::_Exit(137);
    }
  }

  if (const char* out = args.get("out")) {
    std::ofstream f(out);
    f << csv;
    if (!f) {
      std::fprintf(stderr, "error: could not write %s\n", out);
      return 1;
    }
    std::printf("wrote round series to %s\n", out);
  } else {
    std::printf("%s", csv.c_str());
  }
  if (const char* publish = args.get("publish")) {
    const auto written = core::publish_scores(runner.store(), publish);
    if (!written.has_value()) {
      std::fprintf(stderr, "error: could not write %s\n", publish);
      return 1;
    }
    std::printf("published %zu snapshot(s) under %s\n", *written, publish);
  }
  return 0;
}

// `rovista analyze`: the paper's longitudinal queries, streamed off an
// RVLA archive (docs/FORMATS.md §5). Every answer is bit-identical to
// the in-memory LongitudinalStore fed the same rounds — the tier-1
// archive stage byte-diffs --publish output against `longitudinal
// --publish`, and tests/test_rvla.cpp oracle-gates the query CSVs.
int cmd_analyze(const Args& args) {
  const char* dir = args.get("archive");
  if (dir == nullptr) return usage();
  const char* query = args.get("query", "info");

  std::string error;
  std::string csv;
  if (std::strcmp(query, "info") == 0) {
    const auto info = analytics::archive_info(dir, &error);
    if (!info.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("archive %s\n", dir);
    std::printf("  frames:     %llu\n",
                static_cast<unsigned long long>(info->frames));
    std::printf("  data bytes: %llu\n",
                static_cast<unsigned long long>(info->data_bytes));
    std::printf("  ases:       %llu\n",
                static_cast<unsigned long long>(info->as_count));
    std::printf("  dates:      %llu%s\n",
                static_cast<unsigned long long>(info->date_count),
                info->any_health ? "  (with round health)" : "");
    if (info->first_date.has_value()) {
      std::printf("  range:      %s .. %s\n",
                  info->first_date->to_string().c_str(),
                  info->last_date->to_string().c_str());
    }
  } else if (std::strcmp(query, "latest-cdf") == 0) {
    const auto latest = analytics::latest_scores(dir, &error);
    if (!latest.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    csv = analytics::latest_cdf_csv(*latest);
  } else if (std::strcmp(query, "fraction-trend") == 0) {
    double threshold = 100.0;
    if (const char* t = args.get("threshold")) {
      if (!util::parse_double(t, threshold)) return usage();
    }
    const auto trend = analytics::fraction_trend(dir, threshold, &error);
    if (!trend.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    csv = analytics::fraction_trend_csv(*trend, threshold);
  } else if (std::strcmp(query, "series") == 0) {
    const char* asn_str = args.get("asn");
    std::uint64_t asn = 0;
    if (asn_str == nullptr || !util::parse_u64(asn_str, asn)) {
      return usage();
    }
    const auto series = analytics::as_series(
        dir, static_cast<core::Asn>(asn), &error);
    if (!series.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    csv = analytics::series_csv(static_cast<core::Asn>(asn), *series);
  } else if (std::strcmp(query, "jumps") == 0) {
    double low = 0.0;
    double high = 100.0;
    if (const char* l = args.get("low")) {
      if (!util::parse_double(l, low)) return usage();
    }
    if (const char* h = args.get("high")) {
      if (!util::parse_double(h, high)) return usage();
    }
    const auto jumps = analytics::score_jumps(dir, low, high, &error);
    if (!jumps.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    csv = analytics::jumps_csv(*jumps);
  } else if (std::strcmp(query, "churn") == 0) {
    const auto rows = analytics::churn(dir, &error);
    if (!rows.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    csv = analytics::churn_csv(*rows);
  } else {
    std::fprintf(stderr, "error: unknown --query '%s'\n", query);
    return usage();
  }

  if (!csv.empty()) {
    if (const char* out = args.get("out")) {
      std::ofstream f(out);
      f << csv;
      if (!f) {
        std::fprintf(stderr, "error: could not write %s\n", out);
        return 1;
      }
      std::printf("wrote %s\n", out);
    } else {
      std::printf("%s", csv.c_str());
    }
  }

  if (const char* publish = args.get("publish")) {
    const auto written = analytics::publish_archive(dir, publish, &error);
    if (!written.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 1;
    }
    std::printf("published %zu snapshot(s) under %s\n", *written, publish);
  }
  return 0;
}

int cmd_checkpoint_inspect(const Args& args) {
  std::string path;
  if (const char* file = args.get("file")) {
    path = file;
  } else if (const char* dir = args.get("dir")) {
    path = persist::CheckpointPaths::in(dir).current;
  } else {
    return usage();
  }

  const auto bytes = persist::read_file_bytes(path);
  if (!bytes.has_value()) {
    std::fprintf(stderr, "error: cannot read %s\n", path.c_str());
    return 1;
  }
  const auto info = persist::inspect_checkpoint(*bytes);
  if (!info.has_value()) {
    std::printf("%s: %zu bytes — too short to contain an RVCP header\n",
                path.c_str(), bytes->size());
    return 1;
  }

  std::printf("%s: %llu bytes\n", path.c_str(),
              static_cast<unsigned long long>(info->file_size));
  std::printf("  magic            %s\n", info->magic_ok ? "RVCP" : "BAD");
  std::printf("  format version   %u%s\n", info->format_version,
              info->version_supported ? "" : " (unsupported)");
  std::printf("  sections         %u (table CRC %s)\n", info->section_count,
              info->table_crc_ok ? "ok" : "BAD");
  util::Table table(
      {"section", "id", "offset", "length", "crc stored", "crc actual", "ok"});
  for (const auto& s : info->sections) {
    char stored[16];
    char actual[16];
    std::snprintf(stored, sizeof stored, "%08x", s.stored_crc);
    std::snprintf(actual, sizeof actual, "%08x",
                  s.in_bounds ? s.computed_crc : 0);
    table.add_row({persist::section_name(s.id), std::to_string(s.id),
                   std::to_string(s.offset), std::to_string(s.length), stored,
                   s.in_bounds ? actual : "-",
                   !s.in_bounds ? "OUT OF BOUNDS"
                                : (s.crc_ok ? "ok" : "BAD")});
  }
  std::printf("%s", table.to_text().c_str());

  if (!info->decodes) {
    std::string error;
    persist::decode_checkpoint(*bytes, &error);
    std::printf("verdict: NOT loadable — %s\n", error.c_str());
    return 1;
  }
  const auto state = persist::decode_checkpoint(*bytes);
  std::size_t cached = 0;
  for (const auto& e : state->cache_entries) {
    if (e.has_value()) ++cached;
  }
  std::printf("verdict: loadable\n");
  std::printf("  config digest    %016llx\n",
              static_cast<unsigned long long>(state->config_digest));
  std::printf("  series tag       %016llx\n",
              static_cast<unsigned long long>(state->user_tag));
  std::printf("  mode             %s\n",
              state->incremental ? "incremental" : "full recompute");
  std::string round_span;
  if (!state->rounds.empty()) {
    round_span = "  (" + state->rounds.front().date.to_string() + " .. " +
                 state->rounds.back().date.to_string() + ")";
  }
  std::printf("  rounds           %zu%s\n", state->rounds.size(),
              round_span.c_str());
  std::printf("  discovery        %zu vVPs, %zu tNodes\n",
              state->vvps.size(), state->tnodes.size());
  std::printf("  score cache      %zu x %zu matrix, %zu cached\n",
              state->cache_vvp_addrs.size(), state->cache_tnode_addrs.size(),
              cached);
  std::printf("  VRP snapshot     %zu VRPs\n", state->vrps.size());
  return 0;
}

int cmd_serve(const Args& args) {
  std::uint64_t seed = 42;
  if (const char* s = args.get("seed")) util::parse_u64(s, seed);
  std::uint64_t rounds = 0;
  if (const char* r = args.get("rounds")) util::parse_u64(r, rounds);
  if (rounds == 0) return usage();
  std::uint64_t interval_days = 30;
  if (const char* i = args.get("interval-days")) {
    util::parse_u64(i, interval_days);
  }
  if (interval_days == 0) interval_days = 1;
  std::uint64_t threads = 0;
  if (const char* t = args.get("threads")) util::parse_u64(t, threads);
  const char* scale = args.get("scale", "paper");
  if (std::strcmp(scale, "paper") != 0 && std::strcmp(scale, "small") != 0) {
    return usage();
  }
  std::uint64_t port = 0;
  if (const char* p = args.get("port")) {
    if (!util::parse_u64(p, port) || port > 65535) return usage();
  }
  std::uint64_t workers = 2;
  if (const char* w = args.get("workers")) util::parse_u64(w, workers);
  if (workers == 0) workers = 1;

  core::IncrementalConfig config;
  config.params.seed = seed;
  config.rovista.scoring.min_vvps_per_as = 2;
  config.rovista.scoring.min_tnodes = 3;
  config.rovista.num_threads = static_cast<int>(threads);
  config.incremental = true;
  // Reachability serves traceroutes off published epochs, so the
  // query daemon always runs the snapshot engine.
  config.engine = snapshot::EngineMode::kSnapshot;
  if (std::strcmp(scale, "small") == 0) {
    config.params.topology.tier1_count = 4;
    config.params.topology.tier2_count = 14;
    config.params.topology.tier3_count = 36;
    config.params.topology.stub_count = 120;
    config.params.tnode_prefix_count = 4;
    config.params.measured_as_count = 12;
    config.params.hosts_per_measured_as = 3;
    config.params.collector_peer_count = 30;
    config.rovista.scoring.min_tnodes = 2;
  }

  util::Date start_date = config.params.start;
  if (const char* d = args.get("start")) util::Date::parse(d, start_date);
  const util::Date series_end = config.params.end;
  const auto round_date = [&](std::uint64_t i) {
    util::Date d = start_date + static_cast<int>(i * interval_days);
    if (d > series_end) d = series_end;
    return d;
  };

  if (args.has("checkpoint-dir")) {
    config.checkpoint_dir = args.get("checkpoint-dir", "");
    if (config.checkpoint_dir.empty()) return usage();
    std::uint64_t every = 1;
    if (const char* e = args.get("checkpoint-every")) {
      util::parse_u64(e, every);
    }
    config.checkpoint_every = static_cast<int>(every);
    // Same series-shape tag as cmd_longitudinal: a serve daemon resumes
    // checkpoints written by an equally-paced longitudinal series.
    persist::ByteWriter tag;
    tag.i64(start_date.days_since_epoch());
    tag.u64(interval_days);
    tag.u8(std::strcmp(scale, "small") == 0 ? 1 : 0);
    config.checkpoint_user_tag = persist::fnv1a64(tag.data());
  } else if (args.has("resume") || args.has("checkpoint-every")) {
    std::fprintf(stderr,
                 "error: --resume/--checkpoint-every need --checkpoint-dir\n");
    return usage();
  }
  if (args.has("archive")) {
    config.archive_dir = args.get("archive", "");
    if (config.archive_dir.empty()) return usage();
  }

  // Block the shutdown signals before any thread exists, so workers and
  // the round thread inherit the mask and only sigwait below sees them.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  core::IncrementalLongitudinalRunner runner(config);
  std::uint64_t warn_depth = 0;
  if (const char* w = args.get("warn-depth")) util::parse_u64(w, warn_depth);
  if (warn_depth > 0) {
    runner.publisher().set_live_epoch_warn_depth(
        static_cast<long>(warn_depth));
  }

  auto feed = std::make_shared<serve::ScoreFeed>();
  std::uint64_t first_round = 0;
  if (args.has("resume")) {
    if (runner.resume_from_checkpoint()) {
      first_round = runner.completed_rounds();
      // Warm start: serve restored scores and trajectories immediately;
      // reachability waits for the first live epoch.
      feed->seed_from_store(runner.store());
      std::printf("resumed from checkpoint: %llu round(s) already done\n",
                  static_cast<unsigned long long>(first_round));
    } else {
      std::printf("no usable checkpoint — starting from scratch\n");
    }
  } else if (!config.archive_dir.empty()) {
    // Warm start off a previous run's RVLA archive: restored scores and
    // trajectories serve immediately; note the first live round rewrites
    // the archive from this process's own (empty) history, exactly as a
    // cold start would.
    if (feed->seed_from_archive(config.archive_dir)) {
      std::printf("seeded feed from archive %s\n",
                  config.archive_dir.c_str());
    }
  }

  serve::ServerOptions server_options;
  server_options.port = static_cast<std::uint16_t>(port);
  server_options.workers = static_cast<int>(workers);
  serve::Server server(server_options, feed);
  if (!server.start()) {
    std::fprintf(stderr, "error: could not start server\n");
    return 1;
  }
  // The machine-readable contract: with --port 0 this is the only way
  // to learn the kernel-assigned port. Flushed, so a pipe reader sees
  // it before the first (slow) round completes.
  std::printf("LISTENING %u\n", server.port());
  std::fflush(stdout);

  std::atomic<bool> stop{false};
  std::atomic<int> rc{0};
  std::thread round_thread([&] {
    for (std::uint64_t i = first_round;
         i < rounds && !stop.load(std::memory_order_relaxed); ++i) {
      const core::RoundReport report = runner.run_round(round_date(i));
      feed->publish(report.date, report.round.scores,
                    runner.publisher().current());
      std::printf("ROUND %s ases=%zu live_epochs=%ld\n",
                  report.date.to_string().c_str(),
                  report.round.scores.size(),
                  runner.publisher().live_epochs());
      std::fflush(stdout);
    }
    if (const char* publish = args.get("publish")) {
      const auto written = core::publish_scores(runner.store(), publish);
      if (!written.has_value()) {
        std::fprintf(stderr, "error: could not write %s\n", publish);
        rc.store(1, std::memory_order_relaxed);
        return;
      }
      std::printf("PUBLISHED %s rounds=%zu\n", publish, *written);
      std::fflush(stdout);
    }
  });

  int sig = 0;
  sigwait(&sigs, &sig);
  stop.store(true, std::memory_order_relaxed);
  round_thread.join();
  server.stop();
  std::printf("SERVED connections=%llu frames=%llu batches=%llu\n",
              static_cast<unsigned long long>(
                  server.io().connections_accepted()),
              static_cast<unsigned long long>(server.io().frames_served()),
              static_cast<unsigned long long>(server.io().batches_served()));
  return rc.load(std::memory_order_relaxed);
}

int cmd_loadgen(const Args& args) {
  serve::LoadgenOptions options;
  std::uint64_t port = 0;
  if (const char* p = args.get("port")) util::parse_u64(p, port);
  if (port == 0 || port > 65535) return usage();
  options.port = static_cast<std::uint16_t>(port);
  options.host = args.get("host", "127.0.0.1");

  std::uint64_t u = 0;
  if (const char* v = args.get("requests")) {
    if (!util::parse_u64(v, options.requests)) return usage();
  }
  if (const char* v = args.get("connections")) {
    if (!util::parse_u64(v, u)) return usage();
    options.connections = static_cast<int>(u);
  }
  if (const char* v = args.get("threads")) {
    if (!util::parse_u64(v, u)) return usage();
    options.threads = static_cast<int>(u);
  }
  if (const char* v = args.get("pipeline")) {
    if (!util::parse_u64(v, u)) return usage();
    options.pipeline = static_cast<int>(u);
  }
  if (const char* v = args.get("rate")) {
    if (!util::parse_double(v, options.rate) || options.rate < 0.0) {
      return usage();
    }
  }
  const auto parse_fraction = [&](const char* flag, double& out) -> bool {
    const char* v = args.get(flag);
    if (v == nullptr) return true;
    return util::parse_double(v, out) && out >= 0.0 && out <= 1.0;
  };
  if (!parse_fraction("traj-fraction", options.trajectory_fraction) ||
      !parse_fraction("reach-fraction", options.reach_fraction)) {
    return usage();
  }
  if (const char* v = args.get("reach-dst")) {
    if (!util::parse_u64(v, u)) return usage();
    options.reach_dst = static_cast<std::uint32_t>(u);
  }
  if (const char* v = args.get("reach-port")) {
    if (!util::parse_u64(v, u)) return usage();
    options.reach_port = static_cast<std::uint16_t>(u);
  }
  if (const char* v = args.get("seed")) util::parse_u64(v, options.seed);
  if (const char* v = args.get("timeout-ms")) {
    if (!util::parse_u64(v, u)) return usage();
    options.timeout_ms = static_cast<int>(u);
  }
  const char* record = args.get("record");
  options.record = record != nullptr;

  const serve::LoadgenResult result = serve::run_loadgen(options);

  std::printf(
      "sent=%llu received=%llu ok=%llu no_data=%llu unknown_as=%llu "
      "bad_request=%llu transport_errors=%llu\n",
      static_cast<unsigned long long>(result.sent),
      static_cast<unsigned long long>(result.received),
      static_cast<unsigned long long>(result.ok),
      static_cast<unsigned long long>(result.no_data),
      static_cast<unsigned long long>(result.unknown_as),
      static_cast<unsigned long long>(result.bad_request),
      static_cast<unsigned long long>(result.transport_errors));
  std::printf("qps=%.0f p50_ms=%.3f p99_ms=%.3f max_ms=%.3f wall_s=%.3f\n",
              result.qps, result.p50_ms, result.p99_ms, result.max_ms,
              result.wall_s);
  std::printf("feed sequences observed: %llu..%llu\n",
              static_cast<unsigned long long>(result.min_epoch_sequence),
              static_cast<unsigned long long>(result.max_epoch_sequence));

  if (record != nullptr) {
    if (!serve::write_record_csv(result.records, record)) {
      std::fprintf(stderr, "error: could not write %s\n", record);
      return 1;
    }
    std::printf("recorded %zu score response(s) to %s\n",
                result.records.size(), record);
  }
  if (const char* json = args.get("json")) {
    std::FILE* f = std::fopen(json, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "error: could not write %s\n", json);
      return 1;
    }
    std::fprintf(f,
                 "{\n"
                 "  \"sent\": %llu,\n"
                 "  \"received\": %llu,\n"
                 "  \"ok\": %llu,\n"
                 "  \"transport_errors\": %llu,\n"
                 "  \"qps\": %.1f,\n"
                 "  \"p50_ms\": %.4f,\n"
                 "  \"p99_ms\": %.4f,\n"
                 "  \"max_ms\": %.4f,\n"
                 "  \"wall_s\": %.4f\n"
                 "}\n",
                 static_cast<unsigned long long>(result.sent),
                 static_cast<unsigned long long>(result.received),
                 static_cast<unsigned long long>(result.ok),
                 static_cast<unsigned long long>(result.transport_errors),
                 result.qps, result.p50_ms, result.p99_ms, result.max_ms,
                 result.wall_s);
    std::fclose(f);
  }
  const bool clean = result.transport_errors == 0 &&
                     result.sent == options.requests &&
                     result.received == result.sent;
  return clean ? 0 : 1;
}

int cmd_feedcheck(const Args& args) {
  const char* record = args.get("record");
  const char* published = args.get("published");
  if (record == nullptr || published == nullptr) return usage();
  std::size_t checked = 0;
  std::string diag;
  if (!serve::verify_record_against_published(record, published, &checked,
                                              &diag)) {
    std::fprintf(stderr, "feedcheck FAILED: %s\n", diag.c_str());
    return 1;
  }
  std::printf("feedcheck ok: %zu recorded score(s) byte-identical to the "
              "published dataset\n",
              checked);
  return 0;
}

}  // namespace

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "checkpoint") == 0) {
    if (argc < 3 || std::strcmp(argv[2], "inspect") != 0) return usage();
    return cmd_checkpoint_inspect(parse_args(argc, argv, 3));
  }
  const Args args = parse_args(argc, argv, 2);
  if (std::strcmp(argv[1], "measure") == 0) return cmd_measure(args);
  if (std::strcmp(argv[1], "query") == 0) return cmd_query(args);
  if (std::strcmp(argv[1], "audit") == 0) return cmd_audit(args);
  if (std::strcmp(argv[1], "longitudinal") == 0) {
    return cmd_longitudinal(args);
  }
  if (std::strcmp(argv[1], "analyze") == 0) return cmd_analyze(args);
  if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(args);
  if (std::strcmp(argv[1], "loadgen") == 0) return cmd_loadgen(args);
  if (std::strcmp(argv[1], "feedcheck") == 0) return cmd_feedcheck(args);
  return usage();
}

int main(int argc, char** argv) {
  // Bad input — an unreadable CAIDA file, a synthetic factor that
  // overflows the scenario address plan — surfaces as std::runtime_error
  // from the library; report it as a CLI error, not an abort.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
