// Figure 6: the fraction of ASes with a 100% ROV protection score over
// the measurement window (the paper: 6.3% in Dec 2021 → 12.3% in Sep
// 2023, roughly doubling).
#include "bench/common.h"

int main() {
  using namespace rovista;
  bench::print_header(
      "Figure 6 — %% of ASes fully protected (score == 100) over time",
      "IMC'23 RoVista, Fig. 6 (§7.1)");

  bench::World world;
  util::Table table({"date", "% ASes at 100", "% ASes at 0", "ASes scored"});

  double first = -1.0;
  double last = 0.0;
  for (const util::Date date : world.monthly_dates(45)) {
    const auto snap = world.run_snapshot(date);
    std::size_t full = 0;
    std::size_t zero = 0;
    for (const auto& s : snap.round.scores) {
      if (s.fully_protected()) ++full;
      if (s.unprotected()) ++zero;
    }
    const double pct_full =
        snap.round.scores.empty()
            ? 0.0
            : 100.0 * static_cast<double>(full) / snap.round.scores.size();
    const double pct_zero =
        snap.round.scores.empty()
            ? 0.0
            : 100.0 * static_cast<double>(zero) / snap.round.scores.size();
    if (first < 0.0) first = pct_full;
    last = pct_full;
    table.add_row({date.to_string(), util::fmt_double(pct_full, 1),
                   util::fmt_double(pct_zero, 1),
                   std::to_string(snap.round.scores.size())});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("trend: %.1f%% -> %.1f%% fully protected\n", first, last);
  std::printf(
      "paper shape: the fully-protected fraction roughly doubles across\n"
      "the 20-month window (6.3%% -> 12.3%%) as ROV deployment spreads.\n");
  return 0;
}
