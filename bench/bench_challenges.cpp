// §7.6: why ASes stall below a 100% score — customer-route exemptions
// (AT&T), scoped default routes to non-validating networks (Swisscom),
// and partial equipment support (NTT).
#include "bench/common.h"

int main() {
  using namespace rovista;
  bench::print_header("§7.6 — challenges to achieving a 100% score",
                      "IMC'23 RoVista, §7.6");

  bench::World world;
  const auto& cs = world.scenario->cases();
  world.run_snapshot(world.scenario->end());

  struct CaseRow {
    const char* name;
    topology::Asn asn;
    const char* mechanism;
  };
  const CaseRow rows[] = {
      {"ATT-like", cs.att, "ROV exemption for customer routes"},
      {"Swisscom-like", cs.default_route_as,
       "scoped default route to a non-validating provider"},
      {"NTT-like", cs.partial_as,
       "partial session coverage (equipment without ROV support)"},
      {"BIT-like", cs.stale_claim_as,
       "claimed ROV but retracted it (stale ground truth)"},
      {"TDC-like", cs.cd_rov_as,
       "collateral damage via non-validating provider"},
  };

  util::Table table({"case", "ASN", "score", "true policy", "mechanism"});
  for (const CaseRow& row : rows) {
    const auto score = world.store.latest_score(row.asn);
    table.add_row({row.name, std::to_string(row.asn),
                   score ? util::fmt_double(*score, 1) + "%" : "unmeasured",
                   bgp::rov_mode_name(world.scenario->true_mode(
                       row.asn, world.scenario->end())),
                   row.mechanism});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper shape: deployers held below 100%% — AT&T passes customer-\n"
      "announced invalids; Swisscom's DDoS on-ramp default route leaked a\n"
      "slice of invalid space (fixed after the paper's report); NTT\n"
      "averaged 94.7%% because some router vendors lacked ROV support;\n"
      "BIT scores 0 despite a 2018 deployment announcement.\n");
  return 0;
}
