// bench_parallel_round — serial vs N-thread measurement-round throughput.
//
// Runs the standard-fixture round with the serial engine (Rovista::
// run_round on one fresh replica) and with the parallel engine at 1, 2,
// 4 and 8 threads, reporting wall time, experiments/second and speedup.
// Every parallel run is checked bit-identical to the serial round — the
// engine's determinism contract — so a reported speedup can never come
// from silently different work.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "bench/common.h"
#include "core/parallel_round.h"

namespace {

using namespace rovista;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

scenario::ScenarioParams fixture_params() {
  scenario::ScenarioParams params;
  params.seed = 11;
  params.topology.tier1_count = 6;
  params.topology.tier2_count = 20;
  params.topology.tier3_count = 50;
  params.topology.stub_count = 180;
  params.tnode_prefix_count = 6;
  params.measured_as_count = 24;
  params.hosts_per_measured_as = 4;
  return params;
}

bool rounds_identical(const core::MeasurementRound& a,
                      const core::MeasurementRound& b) {
  if (a.experiments_run != b.experiments_run ||
      a.inconclusive != b.inconclusive ||
      a.observations.size() != b.observations.size() ||
      a.scores.size() != b.scores.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const auto& x = a.observations[i];
    const auto& y = b.observations[i];
    if (x.vvp_as != y.vvp_as || x.vvp.value() != y.vvp.value() ||
        x.tnode.value() != y.tnode.value() || x.verdict != y.verdict) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    const auto& x = a.scores[i];
    const auto& y = b.scores[i];
    if (x.asn != y.asn ||
        std::memcmp(&x.score, &y.score, sizeof(double)) != 0 ||
        x.vvp_count != y.vvp_count ||
        x.tnodes_consistent != y.tnodes_consistent ||
        x.tnodes_outbound != y.tnodes_outbound ||
        x.tnodes_inconsistent != y.tnodes_inconsistent) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  const scenario::ScenarioParams params = fixture_params();
  const util::Date date = params.start + 150;
  core::RovistaConfig config;
  config.scoring.min_vvps_per_as = 2;
  config.scoring.min_tnodes = 2;

  // Discovery on a throwaway world (mutates host state).
  std::printf("building fixture world (seed %llu) ...\n",
              static_cast<unsigned long long>(params.seed));
  std::vector<scan::Vvp> vvps;
  std::vector<scan::Tnode> tnodes;
  {
    scenario::Scenario s(params);
    s.advance_to(date);
    scan::MeasurementClient client_a(s.plane(), s.client_as_a(),
                                     s.client_addr_a());
    scan::MeasurementClient client_b(s.plane(), s.client_as_b(),
                                     s.client_addr_b());
    core::Rovista rovista(s.plane(), client_a, client_b, config);
    const auto snapshot = s.collector().snapshot(s.routing());
    tnodes = rovista.acquire_tnodes(snapshot, s.current_vrps(),
                                    s.rov_reference_ases(s.current(), 10),
                                    s.non_rov_reference_ases(s.current(), 10));
    vvps = rovista.acquire_vvps(s.vvp_candidates());
  }
  std::printf("fixture: %zu vVPs x %zu tNodes = %zu experiments\n",
              vvps.size(), tnodes.size(), vvps.size() * tnodes.size());
  // Speedup is bounded by physical cores; on a 1-core box every thread
  // count should still be bit-identical but none can be faster.
  std::printf("hardware threads available: %u\n",
              std::thread::hardware_concurrency());

  // Serial engine on a fresh replica world.
  core::MeasurementRound serial;
  double serial_s = 0.0;
  {
    scenario::Scenario world(params);
    world.advance_to(date);
    scan::MeasurementClient client_a(world.plane(), world.client_as_a(),
                                     world.client_addr_a());
    scan::MeasurementClient client_b(world.plane(), world.client_as_b(),
                                     world.client_addr_b());
    core::Rovista rovista(world.plane(), client_a, client_b, config);
    const auto start = Clock::now();
    serial = rovista.run_round(vvps, tnodes);
    serial_s = seconds_since(start);
  }
  const double total = static_cast<double>(serial.experiments_run);
  std::printf("%-10s %8.3f s  %9.1f exp/s  speedup %5.2fx  scores %zu\n",
              "serial", serial_s, total / serial_s, 1.0, serial.scores.size());

  const core::ReplicaFactory factory =
      scenario::make_replica_factory(params, date);
  bool all_identical = true;
  for (const int threads : {1, 2, 4, 8}) {
    core::ParallelRoundConfig round_config;
    round_config.experiment = config.experiment;
    round_config.scoring = config.scoring;
    round_config.num_threads = threads;
    const core::ParallelRoundRunner runner(factory, round_config);
    const auto start = Clock::now();
    const core::MeasurementRound round = runner.run(vvps, tnodes);
    const double elapsed = seconds_since(start);
    const bool identical = rounds_identical(serial, round);
    all_identical = all_identical && identical;
    char label[32];
    std::snprintf(label, sizeof(label), "%d-thread", threads);
    std::printf("%-10s %8.3f s  %9.1f exp/s  speedup %5.2fx  %s\n", label,
                elapsed, total / elapsed, serial_s / elapsed,
                identical ? "bit-identical" : "MISMATCH vs serial");
  }

  if (!all_identical) {
    std::fprintf(stderr, "FAIL: parallel output diverged from serial\n");
    return 1;
  }
  std::printf("all thread counts bit-identical to the serial engine\n");
  return 0;
}
