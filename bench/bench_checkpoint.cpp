// bench_checkpoint — what crash-safety costs and what resume saves.
//
// Runs a 4-round fixture-scale longitudinal series, measuring per round
// the measurement work itself, the checkpoint state capture + RVCP
// encode, and the durable (fsync + rotate) file write, plus the file
// size. Then simulates a restart after round 3: loads the checkpoint,
// restores a fresh runner (world replay + store rebuild), and compares
// that against the cold alternative of re-running the first three
// rounds from scratch.
//
// Gates (exit non-zero):
//   - the written file must load and restore,
//   - the resumed runner's final round must be bit-identical to the
//     uninterrupted runner's,
//   - restore must beat re-running the skipped rounds (it does by
//     orders of magnitude — replay is measurement-free; the gate is a
//     generous 2x so scheduler noise cannot flake CI).
// Results go to BENCH_checkpoint.json.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "core/incremental_runner.h"
#include "persist/checkpoint.h"
#include "persist/checkpoint_io.h"

namespace {

using namespace rovista;
using Clock = std::chrono::steady_clock;

constexpr int kRounds = 4;
constexpr int kIntervalDays = 2;
constexpr int kResumeAfter = 3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

scenario::ScenarioParams fixture_params() {
  scenario::ScenarioParams params;
  params.seed = 11;
  params.topology.tier1_count = 6;
  params.topology.tier2_count = 20;
  params.topology.tier3_count = 50;
  params.topology.stub_count = 180;
  params.tnode_prefix_count = 6;
  params.measured_as_count = 24;
  params.hosts_per_measured_as = 4;
  return params;
}

core::IncrementalConfig engine_config() {
  core::IncrementalConfig config;
  config.params = fixture_params();
  config.rovista.scoring.min_vvps_per_as = 2;
  config.rovista.scoring.min_tnodes = 2;
  config.incremental = true;
  return config;
}

bool rounds_identical(const core::MeasurementRound& a,
                      const core::MeasurementRound& b) {
  if (a.observations.size() != b.observations.size() ||
      a.scores.size() != b.scores.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    if (a.observations[i].verdict != b.observations[i].verdict ||
        a.observations[i].vvp.value() != b.observations[i].vvp.value() ||
        a.observations[i].tnode.value() != b.observations[i].tnode.value()) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    if (a.scores[i].asn != b.scores[i].asn ||
        std::memcmp(&a.scores[i].score, &b.scores[i].score,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct RoundSample {
  util::Date date;
  double round_s = 0.0;    // measurement work
  double capture_s = 0.0;  // checkpoint_state() + RVCP encode
  double write_s = 0.0;    // durable file install (fsync + rotate)
  std::size_t bytes = 0;
};

}  // namespace

int main() {
  const core::IncrementalConfig config = engine_config();
  std::vector<util::Date> dates;
  for (int i = 0; i < kRounds; ++i) {
    dates.push_back(config.params.start + 150 + i * kIntervalDays);
  }

  namespace fs = std::filesystem;
  const std::string ckdir =
      (fs::temp_directory_path() /
       ("rovista-bench-ckpt-" + std::to_string(::getpid())))
          .string();
  fs::remove_all(ckdir);

  // Uninterrupted series, with per-round checkpoint cost accounting.
  core::IncrementalLongitudinalRunner uninterrupted(config);
  std::vector<RoundSample> samples;
  std::vector<core::RoundReport> reports;
  double cold_prefix_s = 0.0;  // measurement time of the resumed-over rounds
  for (int i = 0; i < kRounds; ++i) {
    RoundSample s;
    s.date = dates[static_cast<std::size_t>(i)];
    Clock::time_point t = Clock::now();
    reports.push_back(uninterrupted.run_round(s.date));
    s.round_s = seconds_since(t);
    if (i < kResumeAfter) cold_prefix_s += s.round_s;

    t = Clock::now();
    const persist::CheckpointState state = uninterrupted.checkpoint_state();
    const std::vector<std::uint8_t> bytes = persist::encode_checkpoint(state);
    s.capture_s = seconds_since(t);
    s.bytes = bytes.size();

    t = Clock::now();
    if (!persist::write_checkpoint_file(ckdir, state)) {
      std::fprintf(stderr, "FAIL: checkpoint write refused\n");
      return 1;
    }
    s.write_s = seconds_since(t);
    samples.push_back(s);

    if (i + 1 == kResumeAfter) {
      // Freeze the after-round-3 generation for the resume measurement:
      // later writes rotate it away, so keep a copy aside.
      fs::copy_file(persist::CheckpointPaths::in(ckdir).current,
                    fs::path(ckdir) / "after3.bin",
                    fs::copy_options::overwrite_existing);
    }
  }

  // Simulated restart: load the after-round-3 checkpoint and restore.
  const auto frozen =
      persist::read_file_bytes((fs::path(ckdir) / "after3.bin").string());
  if (!frozen.has_value()) {
    std::fprintf(stderr, "FAIL: frozen checkpoint unreadable\n");
    return 1;
  }
  Clock::time_point t = Clock::now();
  const auto state = persist::decode_checkpoint(*frozen);
  if (!state.has_value()) {
    std::fprintf(stderr, "FAIL: frozen checkpoint does not decode\n");
    return 1;
  }
  core::IncrementalLongitudinalRunner resumed(config);
  if (!resumed.restore(*state)) {
    std::fprintf(stderr, "FAIL: restore refused a valid checkpoint\n");
    return 1;
  }
  const double resume_s = seconds_since(t);

  const core::RoundReport last =
      resumed.run_round(dates[static_cast<std::size_t>(kRounds - 1)]);
  const bool identical =
      rounds_identical(reports.back().round, last.round);
  fs::remove_all(ckdir);

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: resumed final round diverged from uninterrupted\n");
    return 1;
  }
  if (resume_s * 2.0 >= cold_prefix_s) {
    std::fprintf(stderr,
                 "FAIL: resume (%.3fs) not clearly faster than re-running "
                 "%d rounds (%.3fs)\n",
                 resume_s, kResumeAfter, cold_prefix_s);
    return 1;
  }

  std::FILE* f = std::fopen("BENCH_checkpoint.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_checkpoint.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"scenario\": {\"seed\": %llu, \"rounds\": %d, "
               "\"interval_days\": %d, \"resume_after\": %d},\n",
               static_cast<unsigned long long>(config.params.seed), kRounds,
               kIntervalDays, kResumeAfter);
  std::fprintf(f, "  \"rounds\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const RoundSample& s = samples[i];
    std::fprintf(f,
                 "    {\"date\": \"%s\", \"round_s\": %.6f, "
                 "\"capture_encode_s\": %.6f, \"durable_write_s\": %.6f, "
                 "\"checkpoint_bytes\": %zu, \"overhead_fraction\": %.6f}%s\n",
                 s.date.to_string().c_str(), s.round_s, s.capture_s, s.write_s,
                 s.bytes,
                 s.round_s > 0.0 ? (s.capture_s + s.write_s) / s.round_s : 0.0,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"resume\": {\"load_restore_s\": %.6f, "
               "\"cold_rerun_s\": %.6f, \"speedup\": %.1f, "
               "\"final_round_identical\": true}\n",
               resume_s, cold_prefix_s,
               resume_s > 0.0 ? cold_prefix_s / resume_s : 0.0);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf(
      "checkpoint bench: %zu-byte checkpoints, capture+encode %.1f ms, "
      "durable write %.1f ms, resume %.3fs vs cold %.3fs (%.0fx)\n",
      samples.back().bytes, samples.back().capture_s * 1e3,
      samples.back().write_s * 1e3, resume_s, cold_prefix_s,
      resume_s > 0.0 ? cold_prefix_s / resume_s : 0.0);
  return 0;
}
