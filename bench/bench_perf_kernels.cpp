// Microbenchmarks (google-benchmark) of the hot kernels: FIB lookups,
// per-prefix route convergence, ARMA fitting, the full §4.3 experiment,
// and relying-party validation. These are the costs that bound how far
// the simulated measurement scales.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/experiment.h"
#include "net/prefix_trie.h"
#include "rpki/relying_party.h"
#include "scenario/scenario.h"
#include "stats/arma.h"
#include "util/rng.h"

namespace {

using namespace rovista;

void BM_PrefixTrieLongestMatch(benchmark::State& state) {
  util::Rng rng(1);
  net::PrefixTrie<int> trie;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    trie.insert(net::Ipv4Prefix(
                    net::Ipv4Address(static_cast<std::uint32_t>(rng())),
                    static_cast<std::uint8_t>(rng.uniform_u64(8, 24))),
                i);
  }
  std::uint64_t hits = 0;
  for (auto _ : state) {
    const auto m = trie.longest_match(
        net::Ipv4Address(static_cast<std::uint32_t>(rng())));
    hits += m.has_value();
    benchmark::DoNotOptimize(hits);
  }
}
BENCHMARK(BM_PrefixTrieLongestMatch)->Arg(1000)->Arg(10000);

void BM_ArmaFitAuto(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<double> x(static_cast<std::size_t>(state.range(0)));
  for (double& v : x) v = static_cast<double>(rng.poisson(3.0));
  for (auto _ : state) {
    auto model = stats::fit_arma_auto(x, 2, 1);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_ArmaFitAuto)->Arg(9)->Arg(50);

struct ScenarioState {
  std::unique_ptr<scenario::Scenario> s;
  std::unique_ptr<scan::MeasurementClient> client;
  scan::Vvp vvp;
  scan::Tnode tnode;

  ScenarioState() {
    scenario::ScenarioParams params;
    params.seed = 3;
    params.topology.tier1_count = 6;
    params.topology.tier2_count = 20;
    params.topology.tier3_count = 50;
    params.topology.stub_count = 200;
    params.tnode_prefix_count = 5;
    params.measured_as_count = 20;
    params.hosts_per_measured_as = 4;
    s = std::make_unique<scenario::Scenario>(std::move(params));
    s->advance_to(s->start() + 100);
    client = std::make_unique<scan::MeasurementClient>(
        s->plane(), s->client_as_a(), s->client_addr_a());

    // One reliable vVP + one tNode, built directly.
    dataplane::HostConfig vvp_config;
    vvp_config.address = net::Ipv4Address(
        s->as_prefix(s->measured_ases().front()).address().value() + 0x900);
    vvp_config.ipid_policy = dataplane::IpIdPolicy::kGlobal;
    vvp_config.background.base_rate = 3.0;
    vvp_config.seed = 42;
    s->plane().add_host(s->measured_ases().front(), vvp_config);
    vvp = {vvp_config.address, s->measured_ases().front(), 3.0};

    const auto& [prefix, origin] = s->tnode_prefixes().front();
    tnode = {net::Ipv4Address(prefix.address().value() + 10), 80, prefix,
             origin};
  }
};

void BM_RouteConvergencePerPrefix(benchmark::State& state) {
  ScenarioState ss;
  auto& routing = ss.s->routing();
  const auto prefixes = routing.all_prefixes();
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& prefix = prefixes[i++ % prefixes.size()];
    routing.invalidate_prefix(prefix);
    benchmark::DoNotOptimize(routing.routes_for(prefix).size());
  }
}
BENCHMARK(BM_RouteConvergencePerPrefix);

void BM_FullExperiment(benchmark::State& state) {
  ScenarioState ss;
  for (auto _ : state) {
    const auto result =
        core::run_experiment(ss.s->plane(), *ss.client, ss.vvp, ss.tnode);
    benchmark::DoNotOptimize(result.verdict);
  }
}
BENCHMARK(BM_FullExperiment);

void BM_RelyingPartyRun(benchmark::State& state) {
  ScenarioState ss;
  for (auto _ : state) {
    const auto run = rpki::run_relying_party(ss.s->repositories(),
                                             ss.s->current());
    benchmark::DoNotOptimize(run.vrps.size());
  }
}
BENCHMARK(BM_RelyingPartyRun);

void BM_DataPlanePathEvaluation(benchmark::State& state) {
  ScenarioState ss;
  const auto from = ss.s->client_as_a();
  for (auto _ : state) {
    const auto path = ss.s->plane().compute_path(from, ss.tnode.address);
    benchmark::DoNotOptimize(path.delivered);
  }
}
BENCHMARK(BM_DataPlanePathEvaluation);

}  // namespace

BENCHMARK_MAIN();
