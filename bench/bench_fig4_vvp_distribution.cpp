// Figure 4: how many ASes become measurable at different background-
// traffic cutoffs (≤10 / ≤30 / ≤100 pkt/s). The paper keeps only vVPs at
// ≤10 pkt/s; relaxing the cutoff would add ASes at the cost of more
// spoofed traffic.
#include <map>
#include <set>

#include "bench/common.h"
#include "scan/vvp_discovery.h"

int main() {
  using namespace rovista;
  bench::print_header(
      "Figure 4 — vVPs and covered ASes by background-traffic cutoff",
      "IMC'23 RoVista, Fig. 4 (§6.1)");

  bench::World world;
  world.scenario->advance_to(world.scenario->start() + 30);

  // Qualify every responsive candidate with no rate cutoff at all, then
  // bucket by estimated background rate.
  const auto responsive = scan::synack_scan(
      world.scenario->plane(), world.client_a->asn(),
      world.client_a->address(), world.scenario->vvp_candidates());
  const auto vvps = scan::discover_vvps(world.scenario->plane(),
                                        *world.client_a, responsive);

  const double cutoffs[] = {10.0, 30.0, 100.0, 1e9};
  util::Table table({"cutoff (pkt/s)", "vVPs", "ASes covered",
                     "ASes with >=2 vVPs"});
  for (const double cutoff : cutoffs) {
    std::size_t count = 0;
    std::map<topology::Asn, int> per_as;
    for (const auto& v : vvps) {
      if (v.est_background_rate > cutoff) continue;
      ++count;
      ++per_as[v.asn];
    }
    std::size_t robust = 0;
    for (const auto& [asn, n] : per_as) {
      if (n >= 2) ++robust;
    }
    table.add_row({cutoff > 1e8 ? "unlimited" : util::fmt_double(cutoff, 0),
                   std::to_string(count), std::to_string(per_as.size()),
                   std::to_string(robust)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "candidates scanned: %zu, responsive: %zu, global-counter vVPs: %zu\n",
      world.scenario->vvp_candidates().size(), responsive.size(),
      vvps.size());
  std::printf(
      "paper shape: raising the cutoff monotonically adds ASes (the paper\n"
      "gains +14,052 ASes at 30 pkt/s and +18,639 at 100 pkt/s) but RoVista\n"
      "stays at 10 pkt/s to keep spike detection reliable.\n");
  return 0;
}
