// Figure 1: ROA coverage of announced prefixes (top) and the share of
// RPKI-invalid / exclusively-invalid routable prefixes (bottom) over the
// measurement window, as seen from the RouteViews-like collector —
// including the mid-2022 surge of leaked invalid /24s.
#include "bench/common.h"

#include "bgp/collector.h"

int main() {
  using namespace rovista;
  bench::print_header("Figure 1 — ROA coverage and invalid prefixes over time",
                      "IMC'23 RoVista, Fig. 1 (§3.2)");

  bench::World world;
  util::Table table({"date", "% covered by ROA", "% invalid",
                     "% exclusively invalid", "prefixes seen"});

  for (const util::Date date : world.monthly_dates()) {
    world.scenario->advance_to(date);
    const auto snap =
        world.scenario->collector().snapshot(world.scenario->routing());
    const auto stats =
        bgp::classify_snapshot(snap, world.scenario->current_vrps());
    const double total = static_cast<double>(stats.total_prefixes);
    table.add_row({date.to_string(),
                   util::fmt_double(100.0 * stats.covered_prefixes / total, 1),
                   util::fmt_double(100.0 * stats.invalid_prefixes / total, 2),
                   util::fmt_double(
                       100.0 * stats.exclusively_invalid / total, 2),
                   std::to_string(stats.total_prefixes)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper shape: coverage grows steadily (~40%% -> 48.2%%); invalids stay\n"
      "below ~1%% except the 2022-05-27..2022-08-03 surge; exclusively-\n"
      "invalid prefixes are a strict subset of invalids.\n");
  return 0;
}
