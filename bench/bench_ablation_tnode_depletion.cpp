// Ablation for the paper's §6.4 limitation: "as ROV deployment becomes
// more widespread, the number of observable tNodes is likely to
// decrease" — RoVista consumes the very signal it measures. We sweep the
// ROV adoption level of the synthetic Internet and report how many test
// prefixes remain visible, how many tNodes qualify, and how many ASes
// stay measurable.
#include "bench/common.h"

int main() {
  using namespace rovista;
  bench::print_header(
      "Ablation — tNode depletion as ROV adoption grows (§6.4)",
      "IMC'23 RoVista, §6.4 limitation 3");

  util::Table table({"tier2/tier3/stub ROV", "visible test prefixes",
                     "qualified tNodes", "ASes scored", "mean score",
                     "% at 100"});

  const struct {
    const char* label;
    double t2, t3, stub;
  } levels[] = {
      {"0.05 / 0.02 / 0.01", 0.05, 0.02, 0.01},
      {"0.22 / 0.08 / 0.03 (default)", 0.22, 0.08, 0.03},
      {"0.50 / 0.25 / 0.10", 0.50, 0.25, 0.10},
      {"0.80 / 0.60 / 0.40", 0.80, 0.60, 0.40},
      {"0.95 / 0.90 / 0.80", 0.95, 0.90, 0.80},
  };

  for (const auto& level : levels) {
    scenario::ScenarioParams params = bench::bench_params(4242);
    params.rov_end_tier2 = level.t2;
    params.rov_end_tier3 = level.t3;
    params.rov_end_stub = level.stub;
    bench::World world(std::move(params));
    world.scenario->advance_to(world.scenario->end());

    const auto view =
        world.scenario->collector().snapshot(world.scenario->routing());
    const auto test_prefixes = scan::select_test_prefixes(
        view, world.scenario->current_vrps());
    const auto tnodes = world.rovista->acquire_tnodes(
        view, world.scenario->current_vrps(),
        world.scenario->rov_reference_ases(world.scenario->current(), 10),
        world.scenario->non_rov_reference_ases(world.scenario->current(),
                                               10));
    const auto vvps =
        world.rovista->acquire_vvps(world.scenario->vvp_candidates());
    const auto round = world.rovista->run_round(vvps, tnodes);

    double mean = 0.0;
    std::size_t full = 0;
    for (const auto& sc : round.scores) {
      mean += sc.score;
      if (sc.fully_protected()) ++full;
    }
    const double n = std::max<std::size_t>(1, round.scores.size());
    (void)vvps;
    table.add_row({level.label, std::to_string(test_prefixes.size()),
                   std::to_string(tnodes.size()),
                   std::to_string(round.scores.size()),
                   util::fmt_double(mean / n, 1),
                   util::fmt_double(100.0 * full / n, 0) + "%"});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "expected: as adoption grows the substrate shrinks and the signal\n"
      "saturates — fewer invalid prefixes stay visible, and nearly every\n"
      "measured AS converges to 100%%, leaving nothing to distinguish.\n"
      "This is the paper's §6.4 limitation: RoVista consumes the very\n"
      "signal it measures, so it calls for complementary techniques\n"
      "long-term.\n");
  return 0;
}
