// Figure 11 + §8: the crowdsourced operator list (Cloudflare's
// isbgpsafeyet repository) versus RoVista scores — "safe" entries with
// low scores come from stale reports, "unsafe" entries with perfect
// scores from networks that enabled ROV after being listed.
#include <algorithm>

#include "bench/common.h"
#include "validation/cloudflare_list.h"

namespace {

void print_cdf(const char* label, const std::vector<double>& scores) {
  std::printf("%-16s (n=%zu):", label, scores.size());
  if (scores.empty()) {
    std::printf(" -\n");
    return;
  }
  for (const double x : {0.0, 25.0, 50.0, 75.0, 99.0, 100.0}) {
    const auto it = std::upper_bound(scores.begin(), scores.end(), x);
    std::printf("  <=%3.0f:%5.2f", x,
                static_cast<double>(it - scores.begin()) /
                    static_cast<double>(scores.size()));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace rovista;
  bench::print_header("Figure 11 — crowdsourced list labels vs ROV scores",
                      "IMC'23 RoVista, Fig. 11 (§8)");

  bench::World world;
  world.run_snapshot(world.scenario->end());

  util::Rng rng(2023);
  const auto list = validation::generate_crowd_list(
      *world.scenario, 40, /*stale_fraction=*/0.15,
      /*partial_fraction=*/0.2, rng);
  const auto cmp = validation::compare_crowd_list(list, world.store);

  std::printf("list entries: %zu (measured by RoVista: %zu)\n\n", list.size(),
              cmp.safe_scores.size() + cmp.partially_safe_scores.size() +
                  cmp.unsafe_scores.size());
  print_cdf("safe", cmp.safe_scores);
  print_cdf("partially safe", cmp.partially_safe_scores);
  print_cdf("unsafe", cmp.unsafe_scores);

  const auto count_below = [](const std::vector<double>& v, double x) {
    return std::count_if(v.begin(), v.end(),
                         [x](double s) { return s < x; });
  };
  std::printf(
      "\n'safe' entries with score < 50%%: %td (stale reports, BIT-style)\n",
      count_below(cmp.safe_scores, 50.0));
  std::printf(
      "'unsafe' entries with score == 100%%: %td (recently enabled ROV)\n",
      static_cast<std::ptrdiff_t>(std::count_if(
          cmp.unsafe_scores.begin(), cmp.unsafe_scores.end(),
          [](double s) { return s >= 100.0; })));
  std::printf(
      "\npaper shape: 53%% of 'safe' ASes score 100%% but 16%% score <50%%;\n"
      "80%% of 'unsafe' ASes score 0 yet some score 100%% (KPN, Orange);\n"
      "most 'partially safe' entries score 0.\n");
  return 0;
}
