// Ablation: ROV++ vs plain ROV on the collateral-damage hole (§7.4).
//
// The paper's related work cites ROV++ (Morillo et al., NDSS'21) as an
// improved deployable defense. Its v1 behaviour — blackhole traffic for
// a filtered more-specific rather than forwarding it along a covering
// route — closes exactly the Fig. 9 hole. This bench replays the TDC
// case study under both policies and then counts collateral-damage
// victims across the whole measured population.
#include "bench/common.h"

#include "dataplane/traceroute.h"

int main() {
  using namespace rovista;
  bench::print_header("Ablation — ROV++ closes the collateral-damage hole",
                      "extension of §7.4 (cited defense, NDSS'21 ROV++)");

  bench::World world;
  auto& s = *world.scenario;
  s.advance_to(s.start() + 120);
  const auto& cs = s.cases();
  const net::Ipv4Address tnode_addr(cs.cd_invalid_prefix.address().value() +
                                    10);

  // TDC under plain full ROV: reached (Fig. 9).
  const auto before = dataplane::tcp_traceroute(s.plane(), cs.cd_rov_as,
                                                tnode_addr, 80);
  std::printf("TDC-like with plain ROV : %s\n",
              before.reached ? "REACHES the invalid origin (Fig. 9)"
                             : "blocked");

  // Flip TDC to ROV++.
  bgp::AsPolicy rovpp;
  rovpp.rov = bgp::RovMode::kRovPlusPlus;
  s.routing().set_policy(cs.cd_rov_as, rovpp);
  const auto after = dataplane::tcp_traceroute(s.plane(), cs.cd_rov_as,
                                               tnode_addr, 80);
  std::printf("TDC-like with ROV++     : %s (%s)\n",
              after.reached ? "still reaches" : "blackholed",
              dataplane::drop_reason_name(after.stop_reason));

  // Population-level count: ASes that deploy filtering yet still reach
  // >= 1 tNode through a covering route, under each policy.
  std::size_t damaged_plain = 0;
  std::size_t damaged_rovpp = 0;
  std::size_t deployers = 0;
  for (const auto& deployment : s.deployments()) {
    if (deployment.enabled > s.current()) continue;
    if (deployment.mode != bgp::RovMode::kFull) continue;
    ++deployers;
    const auto count_reachable = [&] {
      std::size_t reachable = 0;
      for (const auto& [prefix, origin] : s.tnode_prefixes()) {
        const net::Ipv4Address target(prefix.address().value() + 10);
        if (s.plane().compute_path(deployment.asn, target).delivered) {
          ++reachable;
        }
      }
      return reachable;
    };
    if (count_reachable() > 0) ++damaged_plain;

    bgp::AsPolicy upgraded;
    upgraded.rov = bgp::RovMode::kRovPlusPlus;
    s.routing().set_policy(deployment.asn, upgraded);
    if (count_reachable() > 0) ++damaged_rovpp;
    bgp::AsPolicy restore;
    restore.rov = deployment.mode;
    restore.session_coverage = deployment.session_coverage;
    s.routing().set_policy(deployment.asn, restore);
  }

  util::Table table({"policy", "full-ROV deployers", "still reach a tNode"});
  table.add_row({"plain ROV", std::to_string(deployers),
                 std::to_string(damaged_plain)});
  table.add_row({"ROV++ (v1 blackholing)", std::to_string(deployers),
                 std::to_string(damaged_rovpp)});
  std::printf("\n%s\n", table.to_text().c_str());
  std::printf(
      "expected: under plain ROV a handful of deployers leak via covering\n"
      "routes through non-validating providers (the paper found 6 such\n"
      "ASes); under ROV++ the local blackhole removes every self-\n"
      "inflicted leak (leaks through *remote* non-validating hops remain\n"
      "— ROV++ can only fix what the deployer itself forwards).\n");
  return 0;
}
