// bench_analytics — what the RVLA archive costs and what streaming buys.
//
// Builds a synthetic multi-year score series (R rounds x A ASes with
// per-round churn), appends it frame by frame through the durable
// RvlaWriter, and then answers every query in src/analytics/queries.h
// twice: streaming off the archive, and walking an in-memory
// LongitudinalStore fed the same rounds. Reports archive size per
// frame, append latency, and per-query stream-vs-memory wall time.
//
// Gates (exit non-zero):
//   - every streaming answer must be value-identical to the store's
//     (compared through the shared CSV renderers, so equality is the
//     same byte equality tier-1 checks),
//   - the published dataset (publish_archive) must byte-match
//     core::publish_scores.
//
// Results go to BENCH_analytics.json. --smoke shrinks the series for
// the tier-1 stage; the identity gates all still run.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "analytics/queries.h"
#include "analytics/rvla_io.h"
#include "core/longitudinal.h"
#include "core/publish.h"
#include "util/csv.h"

namespace {

using namespace rovista;
using core::Asn;
using util::Date;
using Clock = std::chrono::steady_clock;

namespace fs = std::filesystem;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Shape {
  int rounds = 600;  // ~ the paper's 20 months of daily-ish rounds
  int ases = 2000;
};

Shape smoke_shape() { return Shape{40, 200}; }

struct QuerySample {
  const char* name;
  double stream_s = 0.0;
  double memory_s = 0.0;
};

bool same_files(const fs::path& a, const fs::path& b) {
  auto slurp = [](const fs::path& p) {
    std::ifstream f(p, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(f),
                       std::istreambuf_iterator<char>());
  };
  std::vector<std::string> names_a, names_b;
  for (const auto& e : fs::directory_iterator(a)) {
    names_a.push_back(e.path().filename().string());
  }
  for (const auto& e : fs::directory_iterator(b)) {
    names_b.push_back(e.path().filename().string());
  }
  std::sort(names_a.begin(), names_a.end());
  std::sort(names_b.begin(), names_b.end());
  if (names_a != names_b) return false;
  for (const std::string& name : names_a) {
    if (slurp(a / name) != slurp(b / name)) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_analytics.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const Shape shape = smoke ? smoke_shape() : Shape{};

  const std::string dir =
      (fs::temp_directory_path() /
       ("rovista-bench-rvla-" + std::to_string(::getpid())))
          .string();
  fs::remove_all(dir);

  // --- build the series: archive (timed appends) + in-memory store ---
  std::mt19937_64 rng(42);
  std::uniform_int_distribution<int> level(0, 8);    // score = 12.5 * level
  std::uniform_int_distribution<int> percent(0, 99);
  std::vector<double> current(static_cast<std::size_t>(shape.ases));
  for (double& score : current) score = 12.5 * level(rng);

  std::string error;
  auto writer = analytics::RvlaWriter::create(dir, {}, &error);
  if (!writer.has_value()) {
    std::fprintf(stderr, "FAIL: create: %s\n", error.c_str());
    return 1;
  }
  core::LongitudinalStore store;
  core::RoundHealth none;
  const Date base = Date::from_ymd(2021, 7, 1);

  double append_s = 0.0;
  double record_s = 0.0;
  for (int round = 0; round < shape.rounds; ++round) {
    const Date date = base + round;
    std::vector<std::pair<Asn, double>> pairs;
    std::vector<core::AsScore> scores;
    pairs.reserve(static_cast<std::size_t>(shape.ases));
    scores.reserve(static_cast<std::size_t>(shape.ases));
    for (int i = 0; i < shape.ases; ++i) {
      if (percent(rng) < 2) {  // ~2% of ASes move per round
        current[static_cast<std::size_t>(i)] = 12.5 * level(rng);
      }
      const Asn asn = static_cast<Asn>(64500 + i);
      const double score = current[static_cast<std::size_t>(i)];
      pairs.emplace_back(asn, score);
      core::AsScore s;
      s.asn = asn;
      s.score = score;
      scores.push_back(s);
    }

    Clock::time_point t = Clock::now();
    if (!writer->append(analytics::make_frame(date, pairs, false, none),
                        &error)) {
      std::fprintf(stderr, "FAIL: append: %s\n", error.c_str());
      return 1;
    }
    append_s += seconds_since(t);

    t = Clock::now();
    store.record(date, scores);
    record_s += seconds_since(t);
  }
  const std::uint64_t archive_bytes = writer->head().data_size;

  // --- queries: streaming vs the in-memory walk, identity-gated ---
  std::vector<QuerySample> samples;
  bool identical = true;

  {
    QuerySample s{"latest_cdf"};
    Clock::time_point t = Clock::now();
    const auto streamed = analytics::latest_scores(dir, &error);
    const std::string stream_csv =
        streamed.has_value() ? analytics::latest_cdf_csv(*streamed) : "";
    s.stream_s = seconds_since(t);

    t = Clock::now();
    std::vector<std::pair<Asn, double>> walked;
    for (const Asn asn : store.ases()) {
      walked.emplace_back(asn, *store.latest_score(asn));
    }
    const std::string memory_csv = analytics::latest_cdf_csv(walked);
    s.memory_s = seconds_since(t);
    identical = identical && streamed.has_value() && stream_csv == memory_csv;
    samples.push_back(s);
  }
  {
    QuerySample s{"fraction_trend"};
    Clock::time_point t = Clock::now();
    const auto streamed = analytics::fraction_trend(dir, 100.0, &error);
    const std::string stream_csv =
        streamed.has_value() ? analytics::fraction_trend_csv(*streamed, 100.0)
                             : "";
    s.stream_s = seconds_since(t);

    t = Clock::now();
    std::vector<std::pair<Date, double>> walked;
    for (const Date date : store.dates()) {
      walked.emplace_back(date, store.fraction_at_least(date, 100.0));
    }
    const std::string memory_csv =
        analytics::fraction_trend_csv(walked, 100.0);
    s.memory_s = seconds_since(t);
    identical = identical && streamed.has_value() && stream_csv == memory_csv;
    samples.push_back(s);
  }
  {
    QuerySample s{"as_series"};
    const Asn asn = 64500 + static_cast<Asn>(shape.ases) / 2;
    Clock::time_point t = Clock::now();
    const auto streamed = analytics::as_series(dir, asn, &error);
    const std::string stream_csv =
        streamed.has_value() ? analytics::series_csv(asn, *streamed) : "";
    s.stream_s = seconds_since(t);

    t = Clock::now();
    const std::string memory_csv = analytics::series_csv(asn,
                                                         store.series(asn));
    s.memory_s = seconds_since(t);
    identical = identical && streamed.has_value() && stream_csv == memory_csv;
    samples.push_back(s);
  }
  {
    QuerySample s{"score_jumps"};
    Clock::time_point t = Clock::now();
    const auto streamed = analytics::score_jumps(dir, 0.0, 100.0, &error);
    const std::string stream_csv =
        streamed.has_value() ? analytics::jumps_csv(*streamed) : "";
    s.stream_s = seconds_since(t);

    t = Clock::now();
    const std::string memory_csv =
        analytics::jumps_csv(store.score_jumps(0.0, 100.0));
    s.memory_s = seconds_since(t);
    identical = identical && streamed.has_value() && stream_csv == memory_csv;
    samples.push_back(s);
  }
  {
    QuerySample s{"publish"};
    const fs::path pub_store = fs::path(dir + "-pub-store");
    const fs::path pub_archive = fs::path(dir + "-pub-archive");
    fs::remove_all(pub_store);
    fs::remove_all(pub_archive);

    Clock::time_point t = Clock::now();
    const auto written =
        analytics::publish_archive(dir, pub_archive.string(), &error);
    s.stream_s = seconds_since(t);

    t = Clock::now();
    const auto from_store = core::publish_scores(store, pub_store.string());
    s.memory_s = seconds_since(t);

    identical = identical && written.has_value() && from_store.has_value() &&
                *written == *from_store &&
                same_files(pub_store, pub_archive);
    fs::remove_all(pub_store);
    fs::remove_all(pub_archive);
    samples.push_back(s);
  }

  fs::remove_all(dir);
  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: a streaming answer diverged from the store\n");
    return 1;
  }

  const double bytes_per_frame =
      static_cast<double>(archive_bytes) / shape.rounds;
  const double append_ms = append_s * 1e3 / shape.rounds;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"series\": {\"rounds\": %d, \"ases\": %d},\n",
               shape.rounds, shape.ases);
  std::fprintf(f,
               "  \"archive\": {\"bytes\": %llu, \"bytes_per_frame\": %.1f, "
               "\"append_total_s\": %.6f, \"append_mean_ms\": %.4f, "
               "\"store_record_total_s\": %.6f},\n",
               static_cast<unsigned long long>(archive_bytes),
               bytes_per_frame, append_s, append_ms, record_s);
  std::fprintf(f, "  \"queries\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const QuerySample& s = samples[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"stream_s\": %.6f, "
                 "\"memory_s\": %.6f}%s\n",
                 s.name, s.stream_s, s.memory_s,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"identity_ok\": true,\n");
  std::fprintf(f, "  \"ok\": true\n");
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf(
      "analytics bench: %d rounds x %d ASes, %.1f bytes/frame, append "
      "%.2f ms/round, every streaming answer identical to the store\n",
      shape.rounds, shape.ases, bytes_per_frame, append_ms);
  return 0;
}
