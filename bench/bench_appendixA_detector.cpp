// Appendix A: operating characteristics of the ARMA/ARIMA spike
// detector — empirical false-positive and false-negative rates across
// background rates, traffic shapes and significance levels, plus the
// FN-screening boundary that justifies the ≤10 pkt/s vVP cutoff.
#include "bench/common.h"

#include "stats/spike.h"
#include "util/rng.h"

namespace {

using namespace rovista;

std::vector<double> rates(double rate, std::size_t n, double interval_s,
                          dataplane::TrafficModel::Kind kind,
                          util::Rng& rng, double t0 = 0.0) {
  dataplane::TrafficModel model;
  model.kind = kind;
  model.base_rate = rate;
  model.trend_per_sec = rate * 0.05;
  model.season_amplitude = rate * 0.4;
  model.season_period_s = 12.0;
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double a = t0 + static_cast<double>(i) * interval_s;
    const double lambda = model.expected_packets(a, a + interval_s);
    out[i] = static_cast<double>(rng.poisson(lambda)) / interval_s;
  }
  return out;
}

struct Operating {
  double fp = 0.0;     // spike claimed under null (any index)
  double fn = 0.0;     // burst at index 0 missed
  double usable = 0.0; // fraction of runs the detector accepted
};

Operating characterize(double rate, dataplane::TrafficModel::Kind kind,
                       double alpha, util::Rng& rng) {
  stats::SpikeDetectorConfig config;
  config.alpha = alpha;
  const stats::SpikeDetector detector(config);
  const int reps = 150;
  int usable = 0;
  int fp = 0;
  int fn = 0;
  for (int r = 0; r < reps; ++r) {
    const auto background = rates(rate, 9, 0.5, kind, rng);
    // Null window.
    {
      const auto observed = rates(rate, 8, 0.5, kind, rng, 4.5);
      const auto res = detector.analyze(background, observed);
      if (res.has_value() && res->usable) {
        ++usable;
        if (res->spike_count > 0) ++fp;
      }
    }
    // Burst window: +10 packets over the first (1 s) interval.
    {
      auto observed = rates(rate, 8, 0.5, kind, rng, 4.5);
      observed[0] += 10.0;
      const auto res = detector.analyze(background, observed);
      if (res.has_value() && res->usable && !res->spike_at[0]) ++fn;
    }
  }
  Operating op;
  op.usable = static_cast<double>(usable) / reps;
  op.fp = usable ? static_cast<double>(fp) / usable : 0.0;
  op.fn = usable ? static_cast<double>(fn) / usable : 0.0;
  return op;
}

}  // namespace

int main() {
  bench::print_header("Appendix A — spike detector operating characteristics",
                      "IMC'23 RoVista, Appendix A");

  util::Rng rng(99);
  util::Table table({"traffic", "rate (pkt/s)", "alpha", "usable",
                     "empirical FP", "empirical FN (burst)"});
  const struct {
    const char* name;
    dataplane::TrafficModel::Kind kind;
  } kinds[] = {
      {"constant", dataplane::TrafficModel::Kind::kConstant},
      {"trend", dataplane::TrafficModel::Kind::kTrend},
      {"seasonal", dataplane::TrafficModel::Kind::kSeasonal},
  };
  for (const auto& kind : kinds) {
    for (const double rate : {1.0, 3.0, 6.0, 10.0, 20.0, 50.0}) {
      for (const double alpha : {0.05}) {
        const Operating op = characterize(rate, kind.kind, alpha, rng);
        table.add_row({kind.name, util::fmt_double(rate, 0),
                       util::fmt_double(alpha, 2),
                       util::fmt_double(op.usable, 2),
                       util::fmt_double(op.fp, 3),
                       util::fmt_double(op.fn, 3)});
      }
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper shape: FP stays near the chosen alpha while the background is\n"
      "quiet; FN grows with the background rate; the usable fraction\n"
      "collapses beyond ~10 pkt/s — which is exactly why RoVista only\n"
      "keeps vVPs at or below 10 pkt/s (Appendix A screening).\n");
  return 0;
}
