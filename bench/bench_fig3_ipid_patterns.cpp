// Figures 2 and 3: the IP-ID growth patterns of the three filtering
// regimes, reproduced packet-by-packet on purpose-built fixtures:
//   no filtering      — one spike right after the spoofed burst,
//   inbound filtering — no spike at all,
//   outbound filtering — the burst spike plus the RTO echo ~3 s later.
#include "bench/common.h"

#include "core/experiment.h"

namespace {

using namespace rovista;

struct MiniWorld {
  topology::AsGraph graph;
  std::unique_ptr<bgp::RoutingSystem> routing;
  std::unique_ptr<dataplane::DataPlane> plane;
  std::unique_ptr<scan::MeasurementClient> client;
  scan::Vvp vvp;
  scan::Tnode tnode;

  explicit MiniWorld(const char* regime) {
    using topology::Asn;
    for (Asn a : {1u, 2u, 3u, 4u}) graph.add_as({a, ""});
    for (Asn a : {2u, 3u, 4u}) graph.add_p2c(1, a);
    routing = std::make_unique<bgp::RoutingSystem>(graph);
    for (Asn a : {2u, 3u, 4u}) {
      routing->announce(
          {net::Ipv4Prefix(net::Ipv4Address(a << 24), 8), a});
    }
    rpki::VrpSet vrps;
    vrps.add({*net::Ipv4Prefix::parse("6.6.6.0/24"), 24, 99});
    routing->set_vrps(std::move(vrps));
    routing->announce({*net::Ipv4Prefix::parse("6.6.6.0/24"), 4});
    plane = std::make_unique<dataplane::DataPlane>(*routing, 4242);
    client = std::make_unique<scan::MeasurementClient>(
        *plane, 2, *net::Ipv4Address::parse("2.0.0.10"));

    dataplane::HostConfig vvp_config;
    vvp_config.address = *net::Ipv4Address::parse("3.0.0.1");
    vvp_config.ipid_policy = dataplane::IpIdPolicy::kGlobal;
    vvp_config.background.base_rate = 3.0;
    vvp_config.seed = 31337;
    plane->add_host(3, vvp_config);
    vvp = {vvp_config.address, 3, 3.0};

    dataplane::HostConfig tnode_config;
    tnode_config.address = *net::Ipv4Address::parse("6.6.6.10");
    tnode_config.open_ports = {80};
    tnode_config.rto_seconds = 3.0;
    tnode_config.max_retransmits = 1;
    tnode_config.seed = 99;
    plane->add_host(4, tnode_config);
    tnode = {tnode_config.address, 80, *net::Ipv4Prefix::parse("6.6.6.0/24"),
             4};

    if (std::string(regime) == "inbound") {
      // tNode-side egress filtering: SYN/ACKs never leave AS 4.
      plane->set_filter(4, {.egress_drop_invalid_source = true});
    } else if (std::string(regime) == "outbound") {
      // vVP's AS validates: its RSTs can't reach the invalid prefix.
      bgp::AsPolicy full;
      full.rov = bgp::RovMode::kFull;
      routing->set_policy(3, full);
    }
  }
};

void run_regime(const char* regime) {
  MiniWorld world(regime);
  const auto result = core::run_experiment(*world.plane, *world.client,
                                           world.vvp, world.tnode);
  std::printf("-- %s --\n", regime);
  std::printf("  background rate (pkts/s):");
  for (const double r : result.background_rates) std::printf(" %5.1f", r);
  std::printf("\n  observed rate  (pkts/s):");
  for (const double r : result.observed_rates) std::printf(" %5.1f", r);
  if (result.analysis.has_value()) {
    std::printf("\n  z-scores               :");
    for (const double z : result.analysis->z_scores) std::printf(" %5.1f", z);
    std::printf("\n  spikes                 :");
    for (const bool s : result.analysis->spike_at) {
      std::printf(" %5s", s ? "*" : ".");
    }
  }
  std::printf("\n  verdict: %s (spike clusters: %d)\n\n",
              core::verdict_name(result.verdict), result.spike_clusters);
}

}  // namespace

int main() {
  rovista::bench::print_header(
      "Figures 2/3 — IP-ID growth patterns per filtering regime",
      "IMC'23 RoVista, Fig. 2 and Fig. 3 (§3.3, §4.3)");
  run_regime("no-filtering");
  run_regime("inbound");
  run_regime("outbound");
  std::printf(
      "paper shape: no filtering -> one K+10 spike right after the burst;\n"
      "inbound -> flat at K; outbound -> the burst spike plus a second\n"
      "spike when the tNode's 3 s RTO retransmits.\n");
  return 0;
}
