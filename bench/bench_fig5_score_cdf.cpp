// Figure 5: CDF of the latest ROV protection scores. The paper finds
// 36.2% of ASes at exactly 0, 12.3% at exactly 100, and a 51.5% middle.
#include <algorithm>

#include "bench/common.h"

int main() {
  using namespace rovista;
  bench::print_header("Figure 5 — CDF of latest ROV protection scores",
                      "IMC'23 RoVista, Fig. 5 (§7.1)");

  bench::World world;
  const auto snap = world.run_snapshot(world.scenario->end());

  std::vector<double> scores = world.store.latest_scores();
  std::sort(scores.begin(), scores.end());
  const double n = static_cast<double>(scores.size());

  util::Table table({"score threshold", "CDF (fraction of ASes <= x)"});
  for (const double x : {0.0, 10.0, 20.0, 30.0, 40.0, 50.0, 60.0, 70.0, 80.0,
                         90.0, 99.0, 100.0}) {
    const auto it = std::upper_bound(scores.begin(), scores.end(), x);
    table.add_row({util::fmt_double(x, 0),
                   util::fmt_double(
                       static_cast<double>(it - scores.begin()) / n, 3)});
  }
  std::printf("%s\n", table.to_text().c_str());

  const auto zero = std::count_if(scores.begin(), scores.end(),
                                  [](double s) { return s <= 0.0; });
  const auto full = std::count_if(scores.begin(), scores.end(),
                                  [](double s) { return s >= 100.0; });
  std::printf("ASes scored: %zu | score==0: %.1f%% | score==100: %.1f%% | "
              "partial: %.1f%%\n",
              scores.size(), 100.0 * zero / n, 100.0 * full / n,
              100.0 * (n - zero - full) / n);
  std::printf("(tNodes used: %zu, vVPs: %zu, experiments: %zu)\n",
              snap.tnodes.size(), snap.vvps.size(),
              snap.round.experiments_run);
  std::printf(
      "paper shape: a large mass at exactly 0 (36.2%%), a small mass at\n"
      "exactly 100 (12.3%%), and the majority in between (51.5%%).\n");
  return 0;
}
