function(rovista_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  set_target_properties(${name} PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
  target_include_directories(${name} PRIVATE ${CMAKE_SOURCE_DIR})
  target_link_libraries(${name} PRIVATE
    rovista_validation rovista_bgpstream rovista_incremental
    rovista_snapshot rovista_scenario rovista_faults rovista_core
    rovista_scan rovista_dataplane rovista_bgp rovista_rpki
    rovista_topology rovista_stats rovista_net rovista_util)
endfunction()

rovista_bench(bench_fig1_coverage)
rovista_bench(bench_fig3_ipid_patterns)
rovista_bench(bench_fig4_vvp_distribution)
rovista_bench(bench_fig5_score_cdf)
rovista_bench(bench_fig6_full_protection_trend)
rovista_bench(bench_fig7_rank_vs_score)
rovista_bench(bench_fig8_collateral_benefit)
rovista_bench(bench_fig9_collateral_damage)
rovista_bench(bench_fig10_single_prefix)
rovista_bench(bench_fig11_cloudflare_list)
rovista_bench(bench_table1_tier1)
rovista_bench(bench_table23_official_sources)
rovista_bench(bench_coverage_stats)
rovista_bench(bench_traceroute_xval)
rovista_bench(bench_bgpstream)
rovista_bench(bench_challenges)
rovista_bench(bench_appendixA_detector)

# Microbenchmarks of the hot kernels use google-benchmark proper.
add_executable(bench_perf_kernels ${CMAKE_SOURCE_DIR}/bench/bench_perf_kernels.cpp)
set_target_properties(bench_perf_kernels PROPERTIES RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
target_include_directories(bench_perf_kernels PRIVATE ${CMAKE_SOURCE_DIR})
target_link_libraries(bench_perf_kernels PRIVATE
  rovista_scenario rovista_core rovista_scan rovista_dataplane rovista_bgp
  rovista_rpki rovista_topology rovista_stats rovista_net rovista_util
  benchmark::benchmark)

rovista_bench(bench_parallel_round)
rovista_bench(bench_snapshot)
rovista_bench(bench_incremental_round)
rovista_bench(bench_checkpoint)
rovista_bench(bench_faults)
rovista_bench(bench_ablation_detection)
rovista_bench(bench_ablation_tnode_depletion)
rovista_bench(bench_ablation_rov_modes)
rovista_bench(bench_ablation_rovpp)
rovista_bench(bench_serve)
target_link_libraries(bench_serve PRIVATE rovista_serve)
rovista_bench(bench_analytics)
target_link_libraries(bench_analytics PRIVATE rovista_analytics)

rovista_bench(bench_scale)
