// Ablation: how much protection does each ROV *mode* actually deliver?
//
// The paper's §7.6 shows deployment style matters as much as deployment:
// AT&T's customer exemption, prefer-valid configurations and partial
// equipment support all leak. This bench takes the same world and
// re-runs it with every deployer forced to one mode, reporting the
// protection distribution each policy buys.
#include "bench/common.h"

namespace {

using namespace rovista;

struct Outcome {
  double mean_score = 0.0;
  double pct_full = 0.0;
  double pct_zero = 0.0;
  std::size_t ases = 0;
};

Outcome run_with_mode(std::uint64_t seed, bgp::RovMode mode,
                      double coverage) {
  bench::World world(bench::bench_params(seed));
  auto& s = *world.scenario;
  s.advance_to(s.end());

  // Force every true deployer to the requested mode/coverage.
  for (const auto& deployment : s.deployments()) {
    if (deployment.enabled > s.current()) continue;
    bgp::AsPolicy policy;
    policy.rov = mode;
    policy.session_coverage = coverage;
    s.routing().set_policy(deployment.asn, policy);
  }

  const auto view = s.collector().snapshot(s.routing());
  // The scenario's reference-AS ground truth describes the *original*
  // policies, which this ablation just overrode — run tNode acquisition
  // without the reference filter so every variant sees the same tNodes.
  const std::vector<topology::Asn> no_refs;
  const auto tnodes = world.rovista->acquire_tnodes(
      view, s.current_vrps(), no_refs, no_refs);
  const auto vvps = world.rovista->acquire_vvps(s.vvp_candidates());
  const auto round = world.rovista->run_round(vvps, tnodes);

  Outcome out;
  out.ases = round.scores.size();
  std::size_t full = 0;
  std::size_t zero = 0;
  for (const auto& score : round.scores) {
    out.mean_score += score.score;
    if (score.fully_protected()) ++full;
    if (score.unprotected()) ++zero;
  }
  if (out.ases != 0) {
    out.mean_score /= static_cast<double>(out.ases);
    out.pct_full = 100.0 * static_cast<double>(full) /
                   static_cast<double>(out.ases);
    out.pct_zero = 100.0 * static_cast<double>(zero) /
                   static_cast<double>(out.ases);
  }
  return out;
}

}  // namespace

int main() {
  rovista::bench::print_header(
      "Ablation — protection delivered by each ROV mode",
      "IMC'23 RoVista, §7.6 deployment-style effects");

  const struct {
    const char* label;
    rovista::bgp::RovMode mode;
    double coverage;
  } variants[] = {
      {"full drop-invalid", rovista::bgp::RovMode::kFull, 1.0},
      {"full, 90% session coverage (NTT)", rovista::bgp::RovMode::kFull,
       0.9},
      {"exempt customers (AT&T)", rovista::bgp::RovMode::kExemptCustomers,
       1.0},
      {"prefer-valid only", rovista::bgp::RovMode::kPreferValid, 1.0},
      {"no ROV anywhere", rovista::bgp::RovMode::kNone, 1.0},
  };

  rovista::util::Table table({"deployer mode", "mean score", "% at 100",
                              "% at 0", "ASes"});
  for (const auto& variant : variants) {
    const Outcome out = run_with_mode(42, variant.mode, variant.coverage);
    table.add_row({variant.label, rovista::util::fmt_double(out.mean_score, 1),
                   rovista::util::fmt_double(out.pct_full, 1) + "%",
                   rovista::util::fmt_double(out.pct_zero, 1) + "%",
                   std::to_string(out.ases)});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "expected ordering: full > 90%%-coverage full > exempt-customers >\n"
      "prefer-valid ≈ none. Prefer-valid keeps the invalid route usable\n"
      "whenever no competing valid route exists — for exclusively-invalid\n"
      "prefixes (RoVista's tNodes) it protects nothing, which is why the\n"
      "paper treats it as a data-plane no-op.\n");
  return 0;
}
