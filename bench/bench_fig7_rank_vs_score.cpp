// Figure 7: ROV score bands by AS rank (customer-cone size). The paper
// shows higher-ranked (bigger) ASes skewing toward high scores.
#include <map>

#include "bench/common.h"
#include "topology/cone.h"

int main() {
  using namespace rovista;
  bench::print_header("Figure 7 — score bands by AS rank",
                      "IMC'23 RoVista, Fig. 7 (§7.2)");

  bench::World world;
  world.run_snapshot(world.scenario->end());

  const auto& cones = world.scenario->cones();
  const auto ranked =
      topology::rank_by_cone(world.scenario->graph(), cones);
  const auto ranks = topology::rank_map(ranked);
  const std::size_t total = ranked.size();

  // Rank terciles instead of the paper's bins of 1,000 (our AS count is
  // scenario-scale); band definitions match the paper.
  struct Band {
    const char* label;
    int lo, hi;
  };
  const Band bands[] = {{"80-100%", 80, 100},
                        {"60-80%", 60, 80},
                        {"40-60%", 40, 60},
                        {"20-40%", 20, 40},
                        {"0-20%", 0, 20}};

  std::map<int, std::map<const char*, int>> counts;  // tercile → band → n
  std::map<int, int> tercile_totals;
  for (const auto asn : world.store.ases()) {
    const auto score = world.store.latest_score(asn);
    if (!score.has_value()) continue;
    const std::size_t rank = ranks.at(asn);
    const int tercile = static_cast<int>(3 * (rank - 1) / total);
    ++tercile_totals[tercile];
    for (const Band& band : bands) {
      if (*score >= band.lo && (*score < band.hi || band.hi == 100)) {
        ++counts[tercile][band.label];
        break;
      }
    }
  }

  util::Table table({"rank tercile", "80-100%", "60-80%", "40-60%",
                     "20-40%", "0-20%", "ASes"});
  const char* tercile_names[] = {"top (biggest cones)", "middle", "bottom"};
  for (int t = 0; t < 3; ++t) {
    std::vector<std::string> row{tercile_names[t]};
    const double n = std::max(1, tercile_totals[t]);
    for (const Band& band : bands) {
      row.push_back(util::fmt_double(100.0 * counts[t][band.label] / n, 0) +
                    "%");
    }
    row.push_back(std::to_string(tercile_totals[t]));
    table.add_row(row);
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper shape: the top-ranked bin has the largest 80-100%% share\n"
      "(25%% of the top 1,000 filter >80%% of tNodes) and the low-score\n"
      "share grows as rank decreases.\n");
  return 0;
}
