// bench_faults — cost of the RPKI supply-chain fault-injection layer.
//
// Two claims are pinned, both against the same fixture-scale world:
//
//   1. Knob-zero overhead. With every fault rate at its default 0 the
//      layer must be free: the scenario never builds a FaultChain and
//      the routing system keeps no per-AS views. The claim is gated on
//      an *upper-bound composition*: the idle machinery's per-advance
//      and per-world-construction cost is measured in tight
//      single-threaded loops (knob-zero vs an *armed-but-idle* world —
//      a fault chain built from a vanishingly small failure rate, so
//      every hook runs but nothing ever degrades), multiplied by a
//      deliberately generous count of hook sites per engine round, and
//      divided by the measured per-round baseline. Differencing two
//      whole multithreaded engine series directly is hopeless on shared
//      hardware — identical back-to-back runs were observed 25% apart —
//      while the composed bound is built from paired single-threaded
//      timings (each rep runs both legs back to back; the gated delta
//      is the smallest over reps, so one quiet rep suffices) and only
//      uses the noisy series time as a min-of-reps denominator, which
//      can only *overstate* the ratio. The
//      armed-idle engine rounds are also checked bit-identical to
//      knob-zero rounds: an empty schedule may not perturb a single
//      observation.
//
//   2. Degraded-world speedup. Under 10% RP failure / 20% divergence /
//      10% RTR drop the incremental engine must stay bit-identical to
//      a full recompute every round — per-AS views included — and keep
//      a real speedup even though failure windows opening and closing
//      dirty routes between rounds.
//
// Results go to BENCH_faults.json; exits non-zero if outputs diverge,
// idle overhead reaches 2%, or the degraded 10-round steady-state
// speedup falls below 1.5x (observed ~2x; the gate leaves headroom
// because a third of the steady rounds are genuine full-dirty
// recomputes forced by fault windows opening or closing).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/incremental_runner.h"
#include "faults/fault_chain.h"

namespace {

using namespace rovista;
using Clock = std::chrono::steady_clock;

constexpr int kRounds = 10;
constexpr int kIntervalDays = 5;
constexpr int kThreads = 4;
constexpr int kOverheadDays = 200;
constexpr int kOverheadReps = 5;

constexpr double kFailureRate = 0.10;
constexpr double kDivergenceFraction = 0.20;
constexpr double kDropRate = 0.10;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

scenario::ScenarioParams fixture_params() {
  scenario::ScenarioParams params;
  params.seed = 11;
  params.topology.tier1_count = 6;
  params.topology.tier2_count = 20;
  params.topology.tier3_count = 50;
  params.topology.stub_count = 180;
  params.tnode_prefix_count = 6;
  params.measured_as_count = 24;
  params.hosts_per_measured_as = 4;
  return params;
}

// Enabled, but nothing will ever trip: every per-day fault hook runs
// against an empty schedule.
scenario::ScenarioParams armed_idle_params() {
  scenario::ScenarioParams params = fixture_params();
  params.faults.rp_failure_rate = 1e-12;
  return params;
}

scenario::ScenarioParams faulted_params() {
  scenario::ScenarioParams params = fixture_params();
  params.faults.rp_failure_rate = kFailureRate;
  params.faults.rp_divergence_fraction = kDivergenceFraction;
  params.faults.rtr_drop_rate = kDropRate;
  return params;
}

core::IncrementalConfig engine_config(const scenario::ScenarioParams& params,
                                      bool incremental) {
  core::IncrementalConfig config;
  config.params = params;
  config.rovista.scoring.min_vvps_per_as = 2;
  config.rovista.scoring.min_tnodes = 2;
  config.rovista.num_threads = kThreads;
  config.incremental = incremental;
  return config;
}

bool rounds_identical(const core::MeasurementRound& a,
                      const core::MeasurementRound& b) {
  if (a.experiments_run != b.experiments_run ||
      a.inconclusive != b.inconclusive ||
      a.observations.size() != b.observations.size() ||
      a.scores.size() != b.scores.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const auto& x = a.observations[i];
    const auto& y = b.observations[i];
    if (x.vvp_as != y.vvp_as || x.vvp.value() != y.vvp.value() ||
        x.tnode.value() != y.tnode.value() || x.verdict != y.verdict) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    const auto& x = a.scores[i];
    const auto& y = b.scores[i];
    if (x.asn != y.asn ||
        std::memcmp(&x.score, &y.score, sizeof(double)) != 0 ||
        x.vvp_count != y.vvp_count ||
        x.tnodes_consistent != y.tnodes_consistent ||
        x.tnodes_outbound != y.tnodes_outbound ||
        x.tnodes_inconsistent != y.tnodes_inconsistent) {
      return false;
    }
  }
  return true;
}

std::vector<util::Date> round_dates(const scenario::ScenarioParams& params) {
  std::vector<util::Date> dates;
  for (int r = 0; r < kRounds; ++r) {
    dates.push_back(params.start + 100 + r * kIntervalDays);
  }
  return dates;
}

// ---------- claim 1: knob-zero overhead ----------

// Generous upper bounds on how often a single engine round exercises the
// idle fault machinery. Per round the engine advances the tracking world
// once, (re)builds at most one acquisition world (ctor + one jump
// advance), and constructs one replica world per thread (ctor + one jump
// advance each): ≤ 5 constructions and ≤ 11 advances at kThreads=4.
// Rounded up further so the composed ratio stays an upper bound even if
// the engine grows more hook sites.
constexpr int kIdleWorldsPerRound = 8;
constexpr int kIdleAdvancesPerRound = 24;

double advance_loop_seconds(const scenario::ScenarioParams& params) {
  scenario::Scenario world(params);
  const auto start = Clock::now();
  for (int day = 1; day <= kOverheadDays; ++day) {
    world.advance_to(params.start + day);
  }
  return seconds_since(start);
}

double construct_seconds(const scenario::ScenarioParams& params) {
  constexpr int kWorlds = 8;
  const auto start = Clock::now();
  for (int i = 0; i < kWorlds; ++i) scenario::Scenario world(params);
  return seconds_since(start) / kWorlds;
}

// Paired timing: each rep measures the knob-zero and the armed-idle leg
// back to back, so sustained background load lands on both. The gated
// delta is the smallest over reps — one quiet rep is enough — while the
// per-leg minima feed the informational ratios.
struct Paired {
  double base_min = 0.0;
  double armed_min = 0.0;
  double delta_min = 0.0;  // min over reps of (armed - base); may be < 0

  double delta() const { return delta_min > 0.0 ? delta_min : 0.0; }
};

template <typename F>
Paired paired_min(F&& once, const scenario::ScenarioParams& base_params,
                  const scenario::ScenarioParams& armed_params) {
  Paired r;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    const double b = once(base_params);
    const double a = once(armed_params);
    if (rep == 0 || b < r.base_min) r.base_min = b;
    if (rep == 0 || a < r.armed_min) r.armed_min = a;
    const double d = a - b;
    if (rep == 0 || d < r.delta_min) r.delta_min = d;
  }
  return r;
}

struct OverheadResult {
  // Stable single-threaded numerators: what one idle hook call costs.
  Paired advance;    // kOverheadDays advances per leg
  Paired construct;  // one world construction per leg
  // Denominator: one knob-zero engine round (series min / kRounds).
  double round_baseline_s = 0.0;
  bool identical = false;

  double hook_advance_s() const { return advance.delta() / kOverheadDays; }
  double hook_construct_s() const { return construct.delta(); }
  /// Upper bound on what the idle machinery adds to one engine round.
  double overhead_pct() const {
    if (round_baseline_s <= 0.0) return 0.0;
    const double idle_s = kIdleAdvancesPerRound * hook_advance_s() +
                          kIdleWorldsPerRound * hook_construct_s();
    return 100.0 * idle_s / round_baseline_s;
  }
  double advance_overhead_pct() const {
    return advance.base_min > 0.0
               ? 100.0 * (advance.armed_min - advance.base_min) /
                     advance.base_min
               : 0.0;
  }
};

// Wall seconds for one full kRounds engine series from a cold runner.
double engine_series_seconds(const scenario::ScenarioParams& params) {
  core::IncrementalLongitudinalRunner runner(
      engine_config(params, /*incremental=*/true));
  const auto start = Clock::now();
  for (const util::Date date : round_dates(params)) runner.run_round(date);
  return seconds_since(start);
}

OverheadResult measure_overhead() {
  OverheadResult result;
  result.advance =
      paired_min(advance_loop_seconds, fixture_params(), armed_idle_params());
  result.construct =
      paired_min(construct_seconds, fixture_params(), armed_idle_params());
  std::printf(
      "idle hook: %.2fus per advance (%d-day loops: baseline %.3fs, "
      "armed-idle %.3fs, %.2f%%), %.2fus per world construction\n",
      result.hook_advance_s() * 1e6, kOverheadDays, result.advance.base_min,
      result.advance.armed_min, result.advance_overhead_pct(),
      result.hook_construct_s() * 1e6);

  // Bit-identity: an armed-but-idle chain may not change a single
  // measured bit, and may not report a degraded round.
  core::IncrementalLongitudinalRunner knob0(
      engine_config(fixture_params(), /*incremental=*/true));
  core::IncrementalLongitudinalRunner armed(
      engine_config(armed_idle_params(), /*incremental=*/true));
  result.identical = true;
  for (const util::Date date : round_dates(fixture_params())) {
    const core::RoundReport a = knob0.run_round(date);
    const core::RoundReport b = armed.run_round(date);
    if (!rounds_identical(a.round, b.round) || b.health.degraded()) {
      result.identical = false;
    }
  }

  double series_s = 0.0;
  for (int rep = 0; rep < kOverheadReps; ++rep) {
    const double s = engine_series_seconds(fixture_params());
    if (rep == 0 || s < series_s) series_s = s;
  }
  result.round_baseline_s = series_s / kRounds;
  std::printf(
      "knob-0 overhead (gated upper bound): %.2f%% of a %.3fs round "
      "(<= %d idle advances + %d idle constructions per round)\n",
      result.overhead_pct(), result.round_baseline_s, kIdleAdvancesPerRound,
      kIdleWorldsPerRound);
  std::printf("armed-idle rounds %s knob-0 rounds\n",
              result.identical ? "bit-identical to" : "DIVERGED from");
  return result;
}

// ---------- claim 2: degraded-world speedup ----------

struct RoundSample {
  util::Date date;
  double full_s = 0.0;
  double incr_s = 0.0;
  std::size_t dirty_rows = 0;
  std::size_t total_rows = 0;
  std::size_t stale_ases = 0;
  std::size_t expired_ases = 0;
  std::size_t diverged_ases = 0;
  bool identical = false;
};

struct FaultedResult {
  std::vector<RoundSample> samples;
  double full_total = 0.0;
  double incr_total = 0.0;
  bool all_identical = true;
  bool any_degraded = false;

  double steady_full() const {
    double s = 0.0;
    for (std::size_t i = 1; i < samples.size(); ++i) s += samples[i].full_s;
    return s;
  }
  double steady_incr() const {
    double s = 0.0;
    for (std::size_t i = 1; i < samples.size(); ++i) s += samples[i].incr_s;
    return s;
  }
  double steady_speedup() const {
    return steady_incr() > 0.0 ? steady_full() / steady_incr() : 0.0;
  }
};

FaultedResult run_faulted() {
  const scenario::ScenarioParams params = faulted_params();
  core::IncrementalLongitudinalRunner full(
      engine_config(params, /*incremental=*/false));
  core::IncrementalLongitudinalRunner incr(
      engine_config(params, /*incremental=*/true));

  FaultedResult result;
  for (const util::Date date : round_dates(params)) {
    auto start = Clock::now();
    const core::RoundReport full_report = full.run_round(date);
    const double full_s = seconds_since(start);

    start = Clock::now();
    const core::RoundReport incr_report = incr.run_round(date);
    const double incr_s = seconds_since(start);

    RoundSample s;
    s.date = date;
    s.full_s = full_s;
    s.incr_s = incr_s;
    s.dirty_rows = incr_report.dirty_rows;
    s.total_rows = incr_report.total_rows;
    s.stale_ases = incr_report.health.stale_ases;
    s.expired_ases = incr_report.health.expired_ases;
    s.diverged_ases = incr_report.health.diverged_ases;
    s.identical = rounds_identical(full_report.round, incr_report.round) &&
                  full_report.health == incr_report.health;
    result.samples.push_back(s);
    result.full_total += full_s;
    result.incr_total += incr_s;
    result.all_identical = result.all_identical && s.identical;
    result.any_degraded =
        result.any_degraded || incr_report.health.degraded();

    std::printf(
        "faulted %s  full %7.3fs  incr %7.3fs  speedup %6.2fx  "
        "dirty rows %zu/%zu  stale %zu expired %zu diverged %zu  %s\n",
        date.to_string().c_str(), full_s, incr_s,
        incr_s > 0.0 ? full_s / incr_s : 0.0, s.dirty_rows, s.total_rows,
        s.stale_ases, s.expired_ases, s.diverged_ases,
        s.identical ? "bit-identical" : "MISMATCH");
  }
  std::printf(
      "faulted steady state (rounds 1..%d): full %.3fs  incremental %.3fs  "
      "%.2fx\n",
      kRounds - 1, result.steady_full(), result.steady_incr(),
      result.steady_speedup());
  return result;
}

void write_json(const OverheadResult& overhead, const FaultedResult& faulted) {
  std::FILE* f = std::fopen("BENCH_faults.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_faults.json\n");
    std::exit(1);
  }
  const scenario::ScenarioParams params = fixture_params();
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"scenario\": {\"seed\": %llu, \"rounds\": %d, "
               "\"interval_days\": %d, \"threads\": %d},\n",
               static_cast<unsigned long long>(params.seed), kRounds,
               kIntervalDays, kThreads);
  std::fprintf(f,
               "  \"knob0_overhead\": {\"reps\": %d, "
               "\"overhead_pct_upper_bound\": %.4f, "
               "\"round_baseline_s\": %.6f, \"identical\": %s,\n",
               kOverheadReps, overhead.overhead_pct(),
               overhead.round_baseline_s,
               overhead.identical ? "true" : "false");
  std::fprintf(f,
               "    \"hook_advance_us\": %.3f, \"hook_construct_us\": %.3f, "
               "\"idle_advances_per_round\": %d, "
               "\"idle_worlds_per_round\": %d,\n",
               overhead.hook_advance_s() * 1e6,
               overhead.hook_construct_s() * 1e6, kIdleAdvancesPerRound,
               kIdleWorldsPerRound);
  std::fprintf(f,
               "    \"advance_days\": %d, \"advance_baseline_s\": %.6f, "
               "\"advance_armed_idle_s\": %.6f, "
               "\"advance_overhead_pct\": %.3f},\n",
               kOverheadDays, overhead.advance.base_min,
               overhead.advance.armed_min, overhead.advance_overhead_pct());
  std::fprintf(f,
               "  \"faulted\": {\n"
               "    \"rp_failure_rate\": %.2f, "
               "\"rp_divergence_fraction\": %.2f, \"rtr_drop_rate\": %.2f,\n",
               kFailureRate, kDivergenceFraction, kDropRate);
  std::fprintf(f, "    \"rounds\": [\n");
  for (std::size_t i = 0; i < faulted.samples.size(); ++i) {
    const RoundSample& s = faulted.samples[i];
    std::fprintf(
        f,
        "      {\"date\": \"%s\", \"full_s\": %.6f, \"incremental_s\": "
        "%.6f, \"speedup\": %.2f, \"dirty_rows\": %zu, \"total_rows\": %zu, "
        "\"stale_ases\": %zu, \"expired_ases\": %zu, \"diverged_ases\": "
        "%zu, \"identical\": %s}%s\n",
        s.date.to_string().c_str(), s.full_s, s.incr_s,
        s.incr_s > 0.0 ? s.full_s / s.incr_s : 0.0, s.dirty_rows,
        s.total_rows, s.stale_ases, s.expired_ases, s.diverged_ases,
        s.identical ? "true" : "false",
        i + 1 < faulted.samples.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  std::fprintf(f,
               "    \"total\": {\"full_s\": %.6f, \"incremental_s\": %.6f, "
               "\"speedup\": %.2f},\n",
               faulted.full_total, faulted.incr_total,
               faulted.incr_total > 0.0
                   ? faulted.full_total / faulted.incr_total
                   : 0.0);
  std::fprintf(f,
               "    \"steady_state\": {\"full_s\": %.6f, "
               "\"incremental_s\": %.6f, \"speedup\": %.2f}\n",
               faulted.steady_full(), faulted.steady_incr(),
               faulted.steady_speedup());
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  rovista::bench::print_header(
      "bench_faults — fault-injection layer cost",
      "knob-0 must be free; degraded worlds must keep the incremental "
      "speedup (DESIGN.md, \"Fault model and degradation contract\")");

  const OverheadResult overhead = measure_overhead();
  const FaultedResult faulted = run_faulted();
  write_json(overhead, faulted);
  std::printf("wrote BENCH_faults.json\n");

  int rc = 0;
  if (!overhead.identical) {
    std::fprintf(stderr,
                 "FAIL: armed-idle rounds diverged from knob-0 rounds\n");
    rc = 1;
  }
  if (overhead.overhead_pct() >= 2.0) {
    std::fprintf(stderr,
                 "FAIL: knob-0 overhead upper bound %.2f%% reaches 2%%\n",
                 overhead.overhead_pct());
    rc = 1;
  }
  if (!faulted.all_identical) {
    std::fprintf(stderr,
                 "FAIL: faulted incremental output diverged from full\n");
    rc = 1;
  }
  if (!faulted.any_degraded) {
    std::fprintf(stderr,
                 "FAIL: no round ran degraded — the bench is vacuous\n");
    rc = 1;
  }
  if (faulted.steady_speedup() < 1.5) {
    std::fprintf(stderr,
                 "FAIL: faulted steady-state speedup %.2fx below 1.5x\n",
                 faulted.steady_speedup());
    rc = 1;
  }
  return rc;
}
