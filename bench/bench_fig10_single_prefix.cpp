// Figure 10 + §8: single-RPKI-invalid-prefix measurement (the
// isbgpsafeyet.com model) versus RoVista. When the Cloudflare-like
// network becomes a customer of the AT&T-like tier-1 (which exempts
// customer routes from ROV), the single test prefix becomes reachable
// through AT&T and the single-prefix method's false negatives jump —
// while RoVista's multi-prefix score barely moves.
#include "bench/common.h"

#include "validation/single_prefix.h"

int main() {
  using namespace rovista;
  bench::print_header(
      "Figure 10 — single-prefix FP/FN and the AT&T score over time",
      "IMC'23 RoVista, Fig. 10 (§8)");

  bench::World world;
  const auto& cs = world.scenario->cases();

  // The single test host inside the Cloudflare-like invalid prefix.
  const net::Ipv4Address test_addr(
      cs.cloudflare_test_prefix.address().value() + 10);

  util::Table table({"date", "FP rate", "FN rate", "ATT-like score",
                     "cf test prefix"});
  const util::Date flip = cs.cloudflare_becomes_customer;
  for (util::Date date :
       {flip - 60, flip - 20, flip + 10, flip + 60, flip + 150}) {
    if (date < world.scenario->start()) date = world.scenario->start();
    const auto snap = world.run_snapshot(date);
    const auto labels = validation::single_prefix_measurement(
        world.scenario->plane(), world.scenario->measured_ases(), test_addr);
    const auto cmp =
        validation::compare_with_rovista(labels, snap.round.scores);
    const auto att_score = world.store.score_on(cs.att, date);
    table.add_row(
        {date.to_string(), util::fmt_double(100.0 * cmp.fp_rate(), 1) + "%",
         util::fmt_double(100.0 * cmp.fn_rate(), 1) + "%",
         att_score ? util::fmt_double(*att_score, 1) : "-",
         date < flip ? "peer of ATT (filtered)" : "ATT customer (exempt)"});
  }
  std::printf("relationship flip date: %s\n\n", flip.to_string().c_str());
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper shape: FP ~2.5%% / FN ~3.8%% on average, with the FN rate\n"
      "jumping after 2022-03-14 when Cloudflare became an AT&T customer\n"
      "and AT&T (customer-exempt ROV) stopped filtering the test prefix;\n"
      "AT&T's own RoVista score dips only slightly (100%% -> 97.8%%).\n");
  return 0;
}
