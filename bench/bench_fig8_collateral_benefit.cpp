// Figure 8 + §7.3: collateral benefit. When the KPN-like provider turns
// on ROV, its single-homed stub customers jump to 100% on the same date;
// multihomed customers with non-validating alternatives do not move.
#include "bench/common.h"

int main() {
  using namespace rovista;
  bench::print_header("Figure 8 — collateral benefit (KPN case study)",
                      "IMC'23 RoVista, Fig. 8 (§7.3)");

  bench::World world;
  const auto& cs = world.scenario->cases();

  std::vector<std::pair<std::string, topology::Asn>> tracked;
  tracked.emplace_back("KPN-like provider", cs.kpn);
  for (std::size_t i = 0; i < cs.kpn_stub_customers.size(); ++i) {
    tracked.emplace_back("stub customer " + std::to_string(i),
                         cs.kpn_stub_customers[i]);
  }
  tracked.emplace_back("multihomed (many non-ROV providers)",
                       cs.kpn_multihomed_a);
  tracked.emplace_back("multihomed (one non-ROV provider)",
                       cs.kpn_multihomed_b);

  // Snapshots bracketing the deployment date.
  const std::vector<util::Date> dates = {
      cs.kpn_rov_date - 60, cs.kpn_rov_date - 10, cs.kpn_rov_date + 10,
      cs.kpn_rov_date + 60};
  for (const util::Date date : dates) world.run_snapshot(date);

  std::vector<std::string> header{"AS"};
  for (const util::Date date : dates) header.push_back(date.to_string());
  util::Table table(header);
  for (const auto& [label, asn] : tracked) {
    std::vector<std::string> row{label};
    for (const util::Date date : dates) {
      const auto score = world.store.score_on(asn, date);
      row.push_back(score.has_value() ? util::fmt_double(*score, 1) : "-");
    }
    table.add_row(row);
  }
  std::printf("KPN-like ROV deployment date: %s\n\n",
              cs.kpn_rov_date.to_string().c_str());
  std::printf("%s\n", table.to_text().c_str());

  // Synchronized-jump detection over the whole store (the §7.3 method:
  // the paper found 92 ASes jumping 0 -> 100 on 17 shared dates).
  const auto jumps = world.store.score_jumps(5.0, 95.0);
  std::printf("synchronized 0->100 jumps detected: %zu\n", jumps.size());
  for (const auto& [asn, date] : jumps) {
    std::printf("  AS%u on %s\n", asn, date.to_string().c_str());
  }
  std::printf(
      "\npaper shape: the provider and its stub customers flip to 100%% on\n"
      "the same date; customers with non-validating alternate providers\n"
      "keep their original score (AS 3573 / AS 15466 behaviour).\n");
  return 0;
}
