// Tables 2 and 3 + §6.3.2: cross-validation of RoVista scores against
// operator statements — official announcements, surveys and personal
// communication, including stale claims that outlived reality.
#include "bench/common.h"

#include "validation/ground_truth.h"

int main() {
  using namespace rovista;
  bench::print_header(
      "Tables 2/3 — operator-claim cross-validation",
      "IMC'23 RoVista, Tables 2 and 3 (§6.3.2, Appendix B)");

  bench::World world;
  world.run_snapshot(world.scenario->end());

  const auto report = validation::cross_validate(
      world.scenario->operator_claims(), world.store);

  util::Table table({"ASN", "claim", "source", "RoVista score", "outcome"});
  for (const auto& cmp : report.comparisons) {
    table.add_row(
        {std::to_string(cmp.claim.asn),
         cmp.claim.claims_rov ? "deploys ROV" : "no ROV",
         cmp.claim.source,
         cmp.score >= 0.0 ? util::fmt_double(cmp.score, 1) + "%" : "-",
         validation::outcome_name(cmp.outcome)});
  }
  std::printf("%s\n", table.to_text().c_str());

  std::printf("ROV claims measured: %zu | perfect: %zu | >=90%%: %zu | "
              "discrepant (<90%%): %zu\n",
              report.rov_claims, report.rov_claims_perfect,
              report.rov_claims_high, report.rov_claims_zero_or_low);
  std::printf("non-ROV claims measured: %zu | confirmed at 0%%: %zu\n",
              report.nonrov_claims, report.nonrov_claims_zero);
  std::printf(
      "\npaper shape: of 38 ROV claims, 34 score a perfect 100%%, one sits\n"
      "at 92.5%% (RETN), and 3 score 0 — all stale claims (BIT retracted\n"
      "ROV after a 2018 Juniper RPD crash). Both non-ROV claims score 0.\n");
  return 0;
}
