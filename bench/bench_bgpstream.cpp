// §7.5: joining BGPStream-style hijack reports with ROV protection
// scores — which attacks ROV would have stopped, which slipped through
// customer exemptions, and which a ROA would have prevented.
#include "bench/common.h"

#include "bgpstream/analysis.h"
#include "bgpstream/hijack.h"

int main() {
  using namespace rovista;
  bench::print_header("§7.5 — hijack reports vs ROV protection scores",
                      "IMC'23 RoVista, §7.5 (BGPStream case study)");

  bench::World world;
  world.run_snapshot(world.scenario->end() - 30);

  util::Rng rng(777);
  const auto events = bgpstream::generate_hijacks(*world.scenario, 120, rng);

  // Stage all hijacks against the converged world and collect reports.
  for (const auto& ev : events) bgpstream::apply_hijack(world.scenario->routing(), ev);
  const auto reports = bgpstream::detect_hijacks(
      world.scenario->collector(), world.scenario->routing(),
      world.scenario->current_vrps(), events, world.scenario->current());

  std::vector<bgpstream::ReportAnalysis> analyses;
  analyses.reserve(reports.size());
  for (const auto& r : reports) {
    analyses.push_back(bgpstream::analyze_report(
        r, world.scenario->collector(), world.scenario->routing(),
        world.store));
  }
  for (const auto& ev : events) {
    bgpstream::withdraw_hijack(world.scenario->routing(), ev);
  }

  const auto sum = bgpstream::summarize(analyses);
  util::Table table({"bucket", "count"});
  table.add_row({"hijack events staged", std::to_string(events.size())});
  table.add_row({"reports (visible at collector)",
                 std::to_string(sum.total_reports)});
  table.add_row({"RPKI-covered reports", std::to_string(sum.rpki_covered)});
  table.add_row({"covered, some AS on path scored",
                 std::to_string(sum.covered_with_any_score)});
  table.add_row({"covered, full path scored",
                 std::to_string(sum.covered_fully_scored)});
  table.add_row({"covered, >90%-score AS on path",
                 std::to_string(sum.covered_high_score_on_path)});
  table.add_row({"covered, all zero scores",
                 std::to_string(sum.covered_all_zero)});
  table.add_row({"uncovered, full path scored",
                 std::to_string(sum.uncovered_fully_scored)});
  table.add_row({"uncovered, >90%-score AS on path (ROA would have helped)",
                 std::to_string(sum.uncovered_high_score_on_path)});
  std::printf("%s\n", table.to_text().c_str());
  std::printf(
      "paper shape: 14%% of 1,277 reports were RPKI-covered; among fully\n"
      "scored covered paths only 4%% crossed a >90%%-score AS (all via\n"
      "customer routes); 23.1%% of uncovered hijacks crossed a protected\n"
      "AS — a ROA would have stopped them.\n");
  return 0;
}
