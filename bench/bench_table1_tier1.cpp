// Table 1: ROV protection of the tier-1 clique. The paper finds 16 of 17
// tier-1s at 100% with Deutsche Telekom the lone 0%.
#include <algorithm>

#include "bench/common.h"
#include "topology/cone.h"

int main() {
  using namespace rovista;
  bench::print_header("Table 1 — ROV ratio of the tier-1 clique",
                      "IMC'23 RoVista, Table 1 (§7.1)");

  bench::World world;
  world.run_snapshot(world.scenario->end());

  const auto& graph = world.scenario->graph();
  const auto& cones = world.scenario->cones();
  const auto clique = topology::infer_clique(graph, cones);
  const auto ranks = topology::rank_map(topology::rank_by_cone(graph, cones));

  util::Table table({"rank", "ASN", "name", "ROV score", "true policy"});
  std::size_t full = 0;
  std::size_t measured = 0;
  for (const auto asn : clique) {
    const auto score = world.store.latest_score(asn);
    if (score.has_value()) {
      ++measured;
      if (*score >= 100.0) ++full;
    }
    table.add_row(
        {std::to_string(ranks.at(asn)), std::to_string(asn),
         graph.info(asn)->name,
         score ? util::fmt_double(*score, 2) + "%" : "unmeasured",
         bgp::rov_mode_name(
             world.scenario->true_mode(asn, world.scenario->end()))});
  }
  std::printf("%s\n", table.to_text().c_str());
  std::printf("tier-1s measured: %zu, fully protected: %zu (%.0f%%)\n",
              measured, full,
              measured ? 100.0 * full / measured : 0.0);
  std::printf(
      "paper shape: all but one tier-1 at 100%% (16/17 = 94.1%%); the\n"
      "exception (Deutsche Telekom) sits at 0%%.\n");
  return 0;
}
