// bench_serve — RQP query-server throughput and latency.
//
// Runs the bundled closed-loop load generator against an in-process
// `serve::Server` at 1, 4 and 8 worker threads, each with and without a
// concurrent publisher flipping the score feed underneath the workers
// (a new round every ~2 ms — far harsher than the daemon's real
// cadence). Records QPS and p50/p99 latency per cell in
// BENCH_serve.json.
//
// The interesting comparison is each worker count against itself: the
// epoch-snapshot feed promises that publishing costs readers nothing
// (one shared_ptr swap per batch), so the "publishing" column should
// track the "steady" column within noise. Every response is counted —
// a lost or errored request fails the bench.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "core/scoring.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "util/date.h"

namespace {

using namespace rovista;

constexpr std::uint64_t kRequests = 40000;
constexpr int kAses = 64;

std::vector<core::AsScore> synthetic_scores(int round) {
  std::vector<core::AsScore> scores;
  scores.reserve(kAses);
  for (int i = 0; i < kAses; ++i) {
    core::AsScore s;
    s.asn = 64500 + static_cast<topology::Asn>(i);
    s.score = static_cast<double>((i * 13 + round * 7) % 101);
    s.vvp_count = 2 + i % 5;
    scores.push_back(s);
  }
  return scores;
}

struct Cell {
  int workers = 0;
  bool publishing = false;
  std::uint64_t rounds_published = 0;
  serve::LoadgenResult result;
  bool ok = false;
};

Cell run_cell(int workers, bool publishing) {
  Cell cell;
  cell.workers = workers;
  cell.publishing = publishing;

  auto feed = std::make_shared<serve::ScoreFeed>();
  const util::Date base = util::Date::from_ymd(2022, 1, 1);
  feed->publish(base, synthetic_scores(0), snapshot::EpochRef());

  serve::ServerOptions options;
  options.port = 0;
  options.workers = workers;
  serve::Server server(options, feed);
  if (!server.start()) {
    std::fprintf(stderr, "FAIL: server start (workers=%d)\n", workers);
    return cell;
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> rounds{0};
  std::thread publisher;
  if (publishing) {
    publisher = std::thread([&] {
      int round = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        feed->publish(base + round, synthetic_scores(round),
                      snapshot::EpochRef());
        rounds.fetch_add(1, std::memory_order_relaxed);
        ++round;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
  }

  serve::LoadgenOptions lg;
  lg.port = server.port();
  lg.connections = 8;
  lg.threads = 4;
  lg.requests = kRequests;
  lg.pipeline = 16;
  lg.trajectory_fraction = 0.1;
  cell.result = serve::run_loadgen(lg);

  stop.store(true, std::memory_order_relaxed);
  if (publisher.joinable()) publisher.join();
  cell.rounds_published = rounds.load(std::memory_order_relaxed);
  server.stop();

  cell.ok = cell.result.transport_errors == 0 &&
            cell.result.sent == kRequests &&
            cell.result.received == cell.result.sent;
  const bool spanned =
      !publishing ||
      cell.result.max_epoch_sequence > cell.result.min_epoch_sequence;
  std::printf("workers=%d publishing=%-3s  qps %9.0f  p50 %7.3f ms  "
              "p99 %7.3f ms  seq [%llu..%llu]  rounds %llu  %s%s\n",
              workers, publishing ? "yes" : "no", cell.result.qps,
              cell.result.p50_ms, cell.result.p99_ms,
              static_cast<unsigned long long>(cell.result.min_epoch_sequence),
              static_cast<unsigned long long>(cell.result.max_epoch_sequence),
              static_cast<unsigned long long>(cell.rounds_published),
              cell.ok ? "ok" : "FAIL",
              spanned ? "" : " (burst never spanned a swap)");
  return cell;
}

}  // namespace

int main() {
  rovista::bench::print_header(
      "bench_serve — RQP server QPS and latency under concurrent publishes",
      "closed-loop loadgen, 8 conns x 16 pipeline; \"publishing\" flips the "
      "feed every ~2 ms and should cost readers nothing");

  std::vector<Cell> cells;
  for (const int workers : {1, 4, 8}) {
    for (const bool publishing : {false, true}) {
      cells.push_back(run_cell(workers, publishing));
    }
  }

  bool all_ok = true;
  std::FILE* f = std::fopen("BENCH_serve.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_serve.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"config\": {\"requests\": %llu, \"connections\": 8, "
               "\"threads\": 4, \"pipeline\": 16, \"ases\": %d},\n",
               static_cast<unsigned long long>(kRequests), kAses);
  std::fprintf(f, "  \"cells\": [\n");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    all_ok = all_ok && c.ok;
    std::fprintf(f,
                 "    {\"workers\": %d, \"publishing\": %s, \"qps\": %.0f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"max_ms\": %.3f, "
                 "\"wall_s\": %.3f, \"received\": %llu, \"ok\": %llu, "
                 "\"rounds_published\": %llu, \"min_seq\": %llu, "
                 "\"max_seq\": %llu, \"clean\": %s}%s\n",
                 c.workers, c.publishing ? "true" : "false", c.result.qps,
                 c.result.p50_ms, c.result.p99_ms, c.result.max_ms,
                 c.result.wall_s,
                 static_cast<unsigned long long>(c.result.received),
                 static_cast<unsigned long long>(c.result.ok),
                 static_cast<unsigned long long>(c.rounds_published),
                 static_cast<unsigned long long>(c.result.min_epoch_sequence),
                 static_cast<unsigned long long>(c.result.max_epoch_sequence),
                 c.ok ? "true" : "false",
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"all_clean\": %s\n", all_ok ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");

  if (!all_ok) {
    std::fprintf(stderr, "FAIL: a cell lost or errored requests\n");
    return 1;
  }
  return 0;
}
