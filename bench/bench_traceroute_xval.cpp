// §6.3.1: validating the IP-ID side channel against RIPE-Atlas-style
// TCP traceroutes — the paper's 167,392 tuples matched perfectly.
#include "bench/common.h"

#include "validation/traceroute_xval.h"

int main() {
  using namespace rovista;
  bench::print_header("§6.3.1 — traceroute cross-validation of the IP-ID model",
                      "IMC'23 RoVista, §6.3.1");

  bench::World world;
  const auto snap = world.run_snapshot(world.scenario->start() + 90);

  // Probes live in every AS RoVista measured.
  std::vector<topology::Asn> probe_ases;
  for (const auto& score : snap.round.scores) probe_ases.push_back(score.asn);

  const auto tuples = validation::atlas_traceroutes(
      world.scenario->plane(), probe_ases, snap.tnodes);
  const auto result =
      validation::compare_with_verdicts(tuples, snap.round.observations);

  std::printf("traceroute measurements: %zu (%zu probes x %zu tNodes)\n",
              tuples.size(), probe_ases.size(), snap.tnodes.size());
  std::printf("compared with side-channel verdicts: %zu\n", result.compared);
  std::printf("matched: %zu, mismatched: %zu -> match rate %.2f%%\n",
              result.matched, result.mismatched,
              100.0 * result.match_rate());
  std::printf(
      "\npaper shape: a (near-)perfect match between the control/data-plane\n"
      "traceroute view and the IP-ID inference (the paper reports 100%%\n"
      "over 167,392 reliable tuples).\n");
  return 0;
}
