// Ablation: which parts of the verdict pipeline actually buy accuracy?
//
// Compares full RoVista classification against degraded variants on the
// same (vVP, tNode) experiments, scoring each against data-plane ground
// truth (which the real system never sees — this is exactly what a
// simulator substrate is for):
//   full        — timing-based burst/echo classification with the
//                 magnitude guard and Bonferroni-guarded echo scan,
//   no-magnitude — any significant late z-exceedance counts as the echo,
//   naive-count  — the spike-cluster count alone decides (0/1/2+),
// and, independently, AS-level scoring with and without the §6.2
// unanimity rule.
#include <map>

#include "bench/common.h"

namespace {

using namespace rovista;

core::FilteringVerdict classify_no_magnitude(
    const core::ExperimentResult& r) {
  if (!r.analysis.has_value()) return core::FilteringVerdict::kInconclusive;
  bool late = false;
  for (std::size_t k = 2; k < r.analysis->spike_at.size(); ++k) {
    if (r.analysis->spike_at[k]) late = true;
  }
  if (late) return core::FilteringVerdict::kOutboundFiltering;
  if (r.analysis->spike_at[0]) return core::FilteringVerdict::kNoFiltering;
  return core::FilteringVerdict::kInboundFiltering;
}

core::FilteringVerdict classify_naive_count(
    const core::ExperimentResult& r) {
  if (!r.analysis.has_value()) return core::FilteringVerdict::kInconclusive;
  if (r.spike_clusters >= 2) return core::FilteringVerdict::kOutboundFiltering;
  if (r.spike_clusters == 1) return core::FilteringVerdict::kNoFiltering;
  return core::FilteringVerdict::kInboundFiltering;
}

struct Tally {
  std::size_t ok = 0;
  std::size_t wrong = 0;
  double accuracy() const {
    return ok + wrong == 0
               ? 0.0
               : static_cast<double>(ok) / static_cast<double>(ok + wrong);
  }
};

void score(Tally& tally, core::FilteringVerdict verdict, bool truth_reach) {
  if (verdict == core::FilteringVerdict::kInconclusive ||
      verdict == core::FilteringVerdict::kInboundFiltering) {
    return;
  }
  const bool said_reach = verdict == core::FilteringVerdict::kNoFiltering;
  (said_reach == truth_reach ? tally.ok : tally.wrong)++;
}

}  // namespace

int main() {
  bench::print_header("Ablation — verdict pipeline components",
                      "design-choice ablation (DESIGN.md)");

  bench::World world;
  world.scenario->advance_to(world.scenario->start() + 150);
  const auto view = world.scenario->collector().snapshot(
      world.scenario->routing());
  const auto tnodes = world.rovista->acquire_tnodes(
      view, world.scenario->current_vrps(),
      world.scenario->rov_reference_ases(world.scenario->current(), 10),
      world.scenario->non_rov_reference_ases(world.scenario->current(), 10));
  const auto vvps = world.rovista->acquire_vvps(
      world.scenario->vvp_candidates());

  Tally full;
  Tally no_magnitude;
  Tally naive;
  std::vector<core::PairObservation> full_obs;
  std::vector<core::PairObservation> per_vvp_obs;  // for unanimity ablation

  for (const auto& vvp : vvps) {
    for (const auto& tnode : tnodes) {
      const auto result = world.rovista->measure_pair(vvp, tnode);
      const bool truth =
          world.scenario->plane().compute_path(vvp.asn, tnode.address)
              .delivered;
      score(full, result.verdict, truth);
      score(no_magnitude, classify_no_magnitude(result), truth);
      score(naive, classify_naive_count(result), truth);

      core::PairObservation obs;
      obs.vvp_as = vvp.asn;
      obs.vvp = vvp.address;
      obs.tnode = tnode.address;
      obs.verdict = result.verdict;
      full_obs.push_back(obs);
    }
  }

  util::Table table({"variant", "per-pair accuracy", "pairs judged"});
  table.add_row({"full (timing + magnitude + Bonferroni)",
                 util::fmt_double(100.0 * full.accuracy(), 1) + "%",
                 std::to_string(full.ok + full.wrong)});
  table.add_row({"no magnitude guard",
                 util::fmt_double(100.0 * no_magnitude.accuracy(), 1) + "%",
                 std::to_string(no_magnitude.ok + no_magnitude.wrong)});
  table.add_row({"naive cluster count",
                 util::fmt_double(100.0 * naive.accuracy(), 1) + "%",
                 std::to_string(naive.ok + naive.wrong)});
  std::printf("%s\n", table.to_text().c_str());

  // Unanimity ablation: per-AS score error with and without discarding
  // disagreeing tNodes (without = majority vote per (AS, tNode)).
  const auto scores_unanimous =
      core::aggregate_scores(full_obs, {2, 3});
  std::map<topology::Asn, std::map<std::uint32_t, std::pair<int, int>>> votes;
  for (const auto& obs : full_obs) {
    if (obs.verdict == core::FilteringVerdict::kOutboundFiltering) {
      ++votes[obs.vvp_as][obs.tnode.value()].first;
    } else if (obs.verdict == core::FilteringVerdict::kNoFiltering) {
      ++votes[obs.vvp_as][obs.tnode.value()].second;
    }
  }
  double err_unanimous = 0.0;
  double err_majority = 0.0;
  std::size_t compared = 0;
  for (const auto& sc : scores_unanimous) {
    // Ground truth protection for this AS.
    std::size_t unreachable = 0;
    for (const auto& tnode : tnodes) {
      if (!world.scenario->plane().compute_path(sc.asn, tnode.address)
               .delivered) {
        ++unreachable;
      }
    }
    const double truth = 100.0 * static_cast<double>(unreachable) /
                         static_cast<double>(tnodes.size());
    err_unanimous += std::abs(sc.score - truth);
    // Majority-vote variant.
    int outbound = 0;
    int usable = 0;
    for (const auto& [tnode, vote] : votes[sc.asn]) {
      if (vote.first + vote.second == 0) continue;
      ++usable;
      if (vote.first >= vote.second) ++outbound;
    }
    const double majority_score =
        usable == 0 ? 0.0 : 100.0 * outbound / usable;
    err_majority += std::abs(majority_score - truth);
    ++compared;
  }
  std::printf("per-AS mean |score - truth| over %zu ASes:\n", compared);
  std::printf("  with unanimity rule : %.2f points\n",
              err_unanimous / static_cast<double>(compared));
  std::printf("  majority vote       : %.2f points\n",
              err_majority / static_cast<double>(compared));
  std::printf(
      "\nexpected: the magnitude guard suppresses heavy-tail false echoes\n"
      "(several accuracy points). Unanimity vs majority is a robustness\n"
      "trade: on this benign substrate majority keeps more signal and can\n"
      "edge ahead, but unanimity (the paper's rule) is immune to a single\n"
      "systematically broken vVP polluting an AS's score.\n");
  return 0;
}
