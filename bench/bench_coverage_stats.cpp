// §6.1 coverage statistics: vVP population and filtering, per-AS vVP
// floors, tNode counts and their RIR distribution, plus the §6.2
// consistency rate (paper: 95.1%).
#include <map>

#include "bench/common.h"

int main() {
  using namespace rovista;
  bench::print_header("§6.1/§6.2 — measurement coverage statistics",
                      "IMC'23 RoVista, §6.1 and §6.2");

  bench::World world;
  const auto snap = world.run_snapshot(world.scenario->start() + 60);

  std::map<topology::Asn, int> vvps_per_as;
  for (const auto& v : snap.vvps) ++vvps_per_as[v.asn];

  std::printf("vVP candidates scanned : %zu\n",
              world.scenario->vvp_candidates().size());
  std::printf("qualified vVPs (<=10/s): %zu across %zu ASes\n",
              snap.vvps.size(), vvps_per_as.size());
  std::printf("tNodes                 : %zu\n", snap.tnodes.size());

  // tNode distribution across RIR trust anchors (via the ROA that
  // invalidates each test prefix — i.e. the victim's RIR).
  std::map<std::string, int> by_rir;
  for (const auto& t : snap.tnodes) {
    // The victim's RIR: look up who holds a covering VRP.
    const auto covering = world.scenario->current_vrps().covering(t.prefix);
    std::string rir = "?";
    if (!covering.empty()) {
      const auto* info = world.scenario->graph().info(covering.front().asn);
      if (info != nullptr) rir = topology::rir_name(info->rir);
    }
    ++by_rir[rir];
  }
  std::printf("tNodes by RIR          :");
  for (const auto& [rir, n] : by_rir) {
    std::printf(" %s=%d", rir.c_str(), n);
  }
  std::printf("\n");

  std::printf("experiments run        : %zu (inconclusive %zu = %.1f%%)\n",
              snap.round.experiments_run, snap.round.inconclusive,
              100.0 * static_cast<double>(snap.round.inconclusive) /
                  static_cast<double>(snap.round.experiments_run));
  std::printf("ASes scored            : %zu\n", snap.round.scores.size());
  std::printf("consistency rate       : %.1f%% of (AS, tNode) pairs "
              "unanimous across vVPs\n",
              100.0 * core::consistency_rate(snap.round.observations));
  std::printf(
      "\npaper shape: only 3.2%% of raw vVPs pass the <=10 pkt/s cutoff;\n"
      "a minimum of ~10 tNodes per round; tNodes spread across all five\n"
      "RIRs; 95.1%% of tNodes show consistent reachability per AS.\n");
  return 0;
}
