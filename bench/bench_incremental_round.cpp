// bench_incremental_round — full recompute vs incremental engine over a
// 10-round longitudinal scenario with bounded ROA churn.
//
// The scenario: a fixture-scale world, ten rounds two days apart inside
// a quiet stretch of the timeline (no policy/announcement events, no
// natural VRP churn — found by probing, not hard-coded, so it survives
// parameter changes). Each round a small batch of ROAs in never-announced
// space (198.18.0.0/15, the RFC 2544 benchmarking range) rolls over via
// validity windows: the relying party emits a real announce+withdraw
// delta every round — ≤ 5% of the VRP set — but no announced prefix's
// validity can change. That is the incremental engine's best case and
// the paper's common one: most days the ROA feed churns at the margins
// while the measured world holds still.
//
// The comparison runs twice: once on the plain world and once with a
// slice of ROV deployers carrying SLURM files (slurm_fraction), which
// forces every delta install through the per-view dirty-set path of
// RoutingSystem::apply_vrp_delta. The SLURM columns pin that local
// exceptions no longer cost a full invalidation.
//
// Every incremental round is checked bit-identical to the full
// recompute, so the reported speedup can never come from skipped work
// that mattered. Results go to BENCH_incremental.json; exits non-zero
// if outputs diverge or either 10-round speedup falls below 5x.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/common.h"
#include "core/incremental_runner.h"
#include "incremental/vrp_delta.h"

namespace {

using namespace rovista;
using Clock = std::chrono::steady_clock;

constexpr int kRounds = 10;
constexpr int kIntervalDays = 2;
constexpr int kChurnRoasPerRound = 4;
constexpr int kThreads = 4;
constexpr double kSlurmFraction = 0.3;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

scenario::ScenarioParams fixture_params() {
  scenario::ScenarioParams params;
  params.seed = 11;
  params.topology.tier1_count = 6;
  params.topology.tier2_count = 20;
  params.topology.tier3_count = 50;
  params.topology.stub_count = 180;
  params.tnode_prefix_count = 6;
  params.measured_as_count = 24;
  params.hosts_per_measured_as = 4;
  return params;
}

// First date d such that [d, d + days_needed) sees no timeline events
// and no natural VRP churn when advanced day by day. SLURM exceptions
// change policy contents only — never event dates or the ROA feed — so
// a window probed on the base params is quiet for the SLURM run too.
std::optional<util::Date> find_quiet_window(
    const scenario::ScenarioParams& params, int days_needed) {
  scenario::Scenario probe(params);
  int quiet_run = 0;
  for (util::Date d = params.start + 1; d <= params.end; d += 1) {
    bool vrp_churn = false;
    const scenario::AdvanceStats stats = probe.advance_to(
        d, [&](bgp::RoutingSystem& routing, const rpki::VrpSet& prev,
               rpki::VrpSet next) {
          vrp_churn = !incremental::VrpDeltaComputer::diff(prev, next).empty();
          routing.set_vrps(std::move(next));
        });
    if (stats.events() == 0 && !vrp_churn) {
      if (++quiet_run >= days_needed) return d - (days_needed - 1);
    } else {
      quiet_run = 0;
    }
  }
  return std::nullopt;
}

// The churn source: one CA certificate over 198.18.0.0/15 per tracking
// world; each round publishes kChurnRoasPerRound ROAs on a round-specific
// /24 whose validity window closes before the next round, so every
// subsequent relying-party run sees both announcements and withdrawals.
struct ChurnFeed {
  rpki::Repository* repo = nullptr;
  std::uint64_t cert_serial = 0;

  explicit ChurnFeed(scenario::Scenario& world) {
    repo = &world.repositories().repository(topology::Rir::kArin);
    rpki::ResourceSet resources;
    resources.prefixes.push_back(
        net::Ipv4Prefix(net::Ipv4Address((198u << 24) | (18u << 16)), 15));
    const auto serial = repo->issue_certificate(
        "bench-churn", std::move(resources), world.params().start - 3650,
        world.params().end + 3650);
    if (!serial.has_value()) {
      std::fprintf(stderr, "FAIL: churn certificate refused\n");
      std::exit(1);
    }
    cert_serial = *serial;
  }

  void publish_round(int round, util::Date date) {
    const net::Ipv4Prefix prefix(
        net::Ipv4Address((198u << 24) | (18u << 16) |
                         (static_cast<std::uint32_t>(round) << 8)),
        24);
    for (int k = 0; k < kChurnRoasPerRound; ++k) {
      repo->publish_roa(cert_serial, 64496u + static_cast<std::uint32_t>(k),
                        {{prefix, prefix.length()}}, date,
                        date + (kIntervalDays - 1));
    }
  }
};

bool rounds_identical(const core::MeasurementRound& a,
                      const core::MeasurementRound& b) {
  if (a.experiments_run != b.experiments_run ||
      a.inconclusive != b.inconclusive ||
      a.observations.size() != b.observations.size() ||
      a.scores.size() != b.scores.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const auto& x = a.observations[i];
    const auto& y = b.observations[i];
    if (x.vvp_as != y.vvp_as || x.vvp.value() != y.vvp.value() ||
        x.tnode.value() != y.tnode.value() || x.verdict != y.verdict) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    const auto& x = a.scores[i];
    const auto& y = b.scores[i];
    if (x.asn != y.asn ||
        std::memcmp(&x.score, &y.score, sizeof(double)) != 0 ||
        x.vvp_count != y.vvp_count ||
        x.tnodes_consistent != y.tnodes_consistent ||
        x.tnodes_outbound != y.tnodes_outbound ||
        x.tnodes_inconsistent != y.tnodes_inconsistent) {
      return false;
    }
  }
  return true;
}

struct RoundSample {
  util::Date date;
  double full_s = 0.0;
  double incr_s = 0.0;
  std::size_t vrp_announced = 0;
  std::size_t vrp_withdrawn = 0;
  double churn_fraction = 0.0;
  std::size_t dirty_rows = 0;
  std::size_t total_rows = 0;
  std::size_t executed_pairs = 0;
  std::size_t reused_pairs = 0;
  bool discovery_reused = false;
  bool identical = false;
};

struct ConfigResult {
  std::vector<RoundSample> samples;
  double full_total = 0.0;
  double incr_total = 0.0;
  bool all_identical = true;
  bool churn_bounded = true;

  double speedup() const {
    return incr_total > 0.0 ? full_total / incr_total : 0.0;
  }
};

// One full-vs-incremental comparison: kRounds rounds from `quiet`, both
// engines fed the same churn, every round checked bit-identical.
ConfigResult run_config(const char* label,
                        const scenario::ScenarioParams& params,
                        util::Date quiet) {
  core::IncrementalConfig full_config;
  full_config.params = params;
  full_config.rovista.scoring.min_vvps_per_as = 2;
  full_config.rovista.scoring.min_tnodes = 2;
  full_config.rovista.num_threads = kThreads;
  full_config.incremental = false;
  core::IncrementalConfig incr_config = full_config;
  incr_config.incremental = true;

  core::IncrementalLongitudinalRunner full(full_config);
  core::IncrementalLongitudinalRunner incr(incr_config);
  ChurnFeed full_feed(full.world());
  ChurnFeed incr_feed(incr.world());

  ConfigResult result;
  for (int r = 0; r < kRounds; ++r) {
    const util::Date date = quiet + r * kIntervalDays;
    full_feed.publish_round(r, date);
    incr_feed.publish_round(r, date);

    auto start = Clock::now();
    const core::RoundReport full_report = full.run_round(date);
    const double full_s = seconds_since(start);

    start = Clock::now();
    const core::RoundReport incr_report = incr.run_round(date);
    const double incr_s = seconds_since(start);

    RoundSample s;
    s.date = date;
    s.full_s = full_s;
    s.incr_s = incr_s;
    s.vrp_announced = incr_report.vrp_announced;
    s.vrp_withdrawn = incr_report.vrp_withdrawn;
    const std::size_t vrp_total =
        incremental::VrpDeltaComputer::flatten(incr.world().current_vrps())
            .size();
    s.churn_fraction =
        vrp_total == 0 ? 0.0
                       : static_cast<double>(s.vrp_announced +
                                             s.vrp_withdrawn) /
                             static_cast<double>(vrp_total);
    s.dirty_rows = incr_report.dirty_rows;
    s.total_rows = incr_report.total_rows;
    s.executed_pairs = incr_report.executed_pairs;
    s.reused_pairs = incr_report.reused_pairs;
    s.discovery_reused = incr_report.discovery_reused;
    s.identical = rounds_identical(full_report.round, incr_report.round);
    result.samples.push_back(s);

    result.all_identical = result.all_identical && s.identical;
    // Round 0 has no prior snapshot, so its delta is the whole feed.
    result.churn_bounded =
        result.churn_bounded && (r == 0 || s.churn_fraction <= 0.05);
    result.full_total += full_s;
    result.incr_total += incr_s;

    std::printf(
        "%s round %2d %s  full %7.3fs  incr %7.3fs  speedup %6.2fx  "
        "delta +%zu/-%zu (%.1f%%)  dirty rows %zu/%zu  %s\n",
        label, r, date.to_string().c_str(), full_s, incr_s,
        incr_s > 0.0 ? full_s / incr_s : 0.0, s.vrp_announced,
        s.vrp_withdrawn, 100.0 * s.churn_fraction, s.dirty_rows,
        s.total_rows, s.identical ? "bit-identical" : "MISMATCH");
  }
  std::printf("%s 10-round totals: full %.3fs  incremental %.3fs  %.2fx\n",
              label, result.full_total, result.incr_total, result.speedup());
  return result;
}

void write_samples(std::FILE* f, const char* indent,
                   const std::vector<RoundSample>& samples) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const RoundSample& s = samples[i];
    std::fprintf(
        f,
        "%s{\"date\": \"%s\", \"full_s\": %.6f, \"incremental_s\": %.6f, "
        "\"speedup\": %.2f, \"vrp_announced\": %zu, \"vrp_withdrawn\": %zu, "
        "\"churn_fraction\": %.4f, \"dirty_rows\": %zu, \"total_rows\": %zu, "
        "\"executed_pairs\": %zu, \"reused_pairs\": %zu, "
        "\"discovery_reused\": %s, \"identical\": %s}%s\n",
        indent, s.date.to_string().c_str(), s.full_s, s.incr_s,
        s.incr_s > 0.0 ? s.full_s / s.incr_s : 0.0, s.vrp_announced,
        s.vrp_withdrawn, s.churn_fraction, s.dirty_rows, s.total_rows,
        s.executed_pairs, s.reused_pairs,
        s.discovery_reused ? "true" : "false",
        s.identical ? "true" : "false",
        i + 1 < samples.size() ? "," : "");
  }
}

void write_totals(std::FILE* f, const char* indent,
                  const ConfigResult& result, bool trailing_comma) {
  // Steady state excludes round 0, where the incremental engine is by
  // definition a cold full recompute.
  double full_steady = 0.0;
  double incr_steady = 0.0;
  for (std::size_t i = 1; i < result.samples.size(); ++i) {
    full_steady += result.samples[i].full_s;
    incr_steady += result.samples[i].incr_s;
  }
  std::fprintf(f,
               "%s\"total\": {\"full_s\": %.6f, \"incremental_s\": %.6f, "
               "\"speedup\": %.2f},\n",
               indent, result.full_total, result.incr_total,
               result.speedup());
  std::fprintf(f,
               "%s\"steady_state\": {\"full_s\": %.6f, "
               "\"incremental_s\": %.6f, \"speedup\": %.2f}%s\n",
               indent, full_steady, incr_steady,
               incr_steady > 0.0 ? full_steady / incr_steady : 0.0,
               trailing_comma ? "," : "");
}

void write_json(const std::string& path,
                const scenario::ScenarioParams& params,
                const ConfigResult& base, const ConfigResult& slurm) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"scenario\": {\"seed\": %llu, \"rounds\": %d, "
               "\"interval_days\": %d, \"threads\": %d, "
               "\"churn_roas_per_round\": %d},\n",
               static_cast<unsigned long long>(params.seed), kRounds,
               kIntervalDays, kThreads, kChurnRoasPerRound);
  std::fprintf(f, "  \"rounds\": [\n");
  write_samples(f, "    ", base.samples);
  std::fprintf(f, "  ],\n");
  write_totals(f, "  ", base, /*trailing_comma=*/true);
  std::fprintf(f, "  \"slurm\": {\n");
  std::fprintf(f, "    \"slurm_fraction\": %.2f,\n", kSlurmFraction);
  std::fprintf(f, "    \"rounds\": [\n");
  write_samples(f, "      ", slurm.samples);
  std::fprintf(f, "    ],\n");
  write_totals(f, "    ", slurm, /*trailing_comma=*/false);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

}  // namespace

int main() {
  const scenario::ScenarioParams params = fixture_params();

  rovista::bench::print_header(
      "bench_incremental_round — VRP-delta-driven recomputation",
      "incremental engine contract (DESIGN.md, \"Incremental longitudinal "
      "engine\")");

  std::printf("probing the timeline for a %d-day quiet stretch ...\n",
              kRounds * kIntervalDays);
  const auto quiet =
      find_quiet_window(params, kRounds * kIntervalDays);
  if (!quiet.has_value()) {
    std::fprintf(stderr, "FAIL: no quiet window in the scenario timeline\n");
    return 1;
  }
  std::printf("quiet window starts %s\n", quiet->to_string().c_str());

  const ConfigResult base = run_config("base ", params, *quiet);

  scenario::ScenarioParams slurm_params = params;
  slurm_params.slurm_fraction = kSlurmFraction;
  const ConfigResult slurm = run_config("slurm", slurm_params, *quiet);

  write_json("BENCH_incremental.json", params, base, slurm);
  std::printf("wrote BENCH_incremental.json\n");

  int rc = 0;
  const auto gate = [&](const char* label, const ConfigResult& r) {
    if (!r.all_identical) {
      std::fprintf(stderr, "FAIL(%s): incremental output diverged from full\n",
                   label);
      rc = 1;
    }
    if (!r.churn_bounded) {
      std::fprintf(stderr, "FAIL(%s): per-round ROA churn exceeded 5%%\n",
                   label);
      rc = 1;
    }
    if (r.speedup() < 5.0) {
      std::fprintf(stderr, "FAIL(%s): 10-round speedup %.2fx below 5x\n",
                   label, r.speedup());
      rc = 1;
    }
  };
  gate("base", base);
  gate("slurm", slurm);
  return rc;
}
