// bench_scale — the Internet-scale routing substrate under load.
//
// Builds a >= 50k-AS world, round-trips it through the CAIDA serial-2
// writer/loader (topology/caida.h), announces >= 100k prefixes, and
// runs one full measurement-shaped round on the rank-flattened engine
// (bgp/flat_propagation.h): the demanded prefix subset propagates to
// convergence at 1, 4 and 8 threads over per-thread route arenas, and
// the batched LPM resolves a large address batch against the full
// announced table. Records in BENCH_scale.json (docs/FORMATS.md §4.3):
//
//   * routes/sec and full-round wall time per thread count, with the
//     order-independent digest checked identical across counts (the
//     thread-count-independence contract of DESIGN.md),
//   * bytes/route: one arena's footprint over its mean live routes,
//   * batched-LPM throughput, oracle-checked against the PrefixTrie
//     on a query sample,
//   * a spot check: several demanded prefixes recomputed by the exact
//     Adj-RIB-In engine (RoutingSystem, kFixedPoint) and compared
//     route-for-route — a reported speed can never come from
//     different answers.
//
// --smoke shrinks the world for the tier-1 stage; the checks all still
// run. --out overrides the JSON path.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bgp/flat_propagation.h"
#include "bgp/routing_system.h"
#include "net/batched_lpm.h"
#include "net/prefix_trie.h"
#include "rpki/validation.h"
#include "topology/caida.h"
#include "topology/generator.h"
#include "util/rng.h"

namespace {

using namespace rovista;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// splitmix64 finalizer: the bench's only randomness, keyed on stable
// quantities (ASN, prefix index) so every run measures identical work.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::size_t read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::size_t kb = 0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, std::strlen(key)) == 0) {
      std::sscanf(line + std::strlen(key), "%zu", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

struct Shape {
  topology::TopologyParams topology;
  std::size_t prefix_count = 0;
  std::size_t demanded_count = 0;
  std::size_t lpm_queries = 0;
  double wall_ceiling_s = 0.0;  // 8-thread full-round target
};

Shape full_shape() {
  Shape s;
  s.topology.tier1_count = 12;
  s.topology.tier2_count = 400;
  s.topology.tier3_count = 4000;
  s.topology.stub_count = 46000;  // 50,412 ASes total
  // Hold per-AS peer degree at the standard world's level instead of
  // letting O(n^2) peering swamp the edge count (same convention as
  // rovista measure --topology synthetic:FACTOR).
  s.topology.tier2_peer_prob = 0.25 * 120.0 / 400.0;
  s.topology.tier3_peer_prob = 0.03 * 600.0 / 4000.0;
  s.prefix_count = 102400;
  s.demanded_count = 512;
  s.lpm_queries = 262144;
  s.wall_ceiling_s = 20.0;
  return s;
}

Shape smoke_shape() {
  Shape s;
  s.topology.tier1_count = 6;
  s.topology.tier2_count = 40;
  s.topology.tier3_count = 400;
  s.topology.stub_count = 4600;  // 5,046 ASes
  s.topology.tier2_peer_prob = 0.25;
  s.topology.tier3_peer_prob = 0.03;
  s.prefix_count = 10240;
  s.demanded_count = 64;
  s.lpm_queries = 32768;
  s.wall_ceiling_s = 20.0;
  return s;
}

// Deterministic ROV assignment by ASN hash: ~12% full, ~3% exempt-
// customers, ~1.5% prefer-valid — roughly the measured deployment mix.
bgp::RovMode rov_mode_of(topology::Asn asn) {
  const std::uint64_t h = mix64(asn) % 1000;
  if (h < 120) return bgp::RovMode::kFull;
  if (h < 150) return bgp::RovMode::kExemptCustomers;
  if (h < 165) return bgp::RovMode::kPreferValid;
  return bgp::RovMode::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  const char* out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    }
  }
  const Shape shape = smoke ? smoke_shape() : full_shape();

  // -- World: generate, then round-trip through the CAIDA form --------
  std::printf("generating %s world ...\n", smoke ? "smoke" : "full");
  util::Rng rng(4242);
  const topology::AsGraph generated =
      topology::generate_topology(shape.topology, rng);
  const std::string caida_text = topology::write_caida_text(generated);

  const auto load_start = Clock::now();
  topology::CaidaResult loaded = topology::load_caida_text(caida_text);
  const double load_s = seconds_since(load_start);
  if (!loaded.ok) {
    std::fprintf(stderr, "FATAL: loader rejected its own canonical form: %s\n",
                 loaded.error.c_str());
    return 1;
  }
  const topology::AsGraph& graph = loaded.graph;
  const std::size_t n = graph.size();
  std::printf("world: %zu ASes, %zu p2c + %zu p2p edges, %zu CAIDA bytes "
              "(loaded in %.3fs)\n",
              n, loaded.stats.p2c_edges, loaded.stats.p2p_edges,
              caida_text.size(), load_s);

  const auto compile_start = Clock::now();
  bgp::flat::FlatGraph fg = bgp::flat::FlatGraph::build(graph);
  const double compile_s = seconds_since(compile_start);
  if (fg.customer_cycle) {
    std::fprintf(stderr, "FATAL: generated world has a customer cycle\n");
    return 1;
  }

  bgp::flat::FlatPolicy fp;
  fp.rov_mode.resize(n);
  fp.coverage.assign(n, 1.0);
  fp.validity_group.assign(n, 0);
  fp.group_rep.assign(1, 0);
  for (std::uint32_t i = 0; i < n; ++i) {
    fp.rov_mode[i] = static_cast<std::uint8_t>(rov_mode_of(fg.asn_of[i]));
  }

  // -- Announcements: P disjoint /20s, origin striped over the ASes;
  // every second prefix is VRP-covered, half of those with the wrong
  // origin (Invalid), the rest uncovered (Unknown) -------------------
  const std::size_t P = shape.prefix_count;
  std::vector<net::Ipv4Prefix> announced;
  std::vector<std::uint32_t> origin_of(P);
  announced.reserve(P);
  std::vector<rpki::Vrp> vrp_list;
  for (std::size_t p = 0; p < P; ++p) {
    const net::Ipv4Prefix prefix(
        net::Ipv4Address(static_cast<std::uint32_t>(p) << 12), 20);
    announced.push_back(prefix);
    origin_of[p] = static_cast<std::uint32_t>(mix64(p ^ 0xfeedULL) % n);
    if (p % 2 == 0) {
      const topology::Asn roa_asn = (p % 4 == 0)
                                        ? fg.asn_of[origin_of[p]]
                                        : fg.asn_of[(origin_of[p] + 1) % n];
      vrp_list.push_back({prefix, 20, roa_asn});
    }
  }
  const rpki::VrpSet vrps(vrp_list);

  const auto validity_of = [&](std::size_t p) {
    return vrps.validate(announced[p], fg.asn_of[origin_of[p]]);
  };

  // Demanded subset: the prefixes this round actually resolves routes
  // for (tNode / dirty prefixes in a real round), stride-sampled.
  std::vector<std::size_t> demanded;
  for (std::size_t d = 0; d < shape.demanded_count; ++d) {
    demanded.push_back(d * (P / shape.demanded_count));
  }

  const auto input_for = [&](std::size_t p) {
    bgp::flat::PrefixInput in;
    in.graph = &fg;
    in.policy = &fp;
    in.prefix = announced[p];
    in.origin_idx = {origin_of[p]};
    in.validity = {validity_of(p)};
    return in;
  };

  // -- Propagation at 1/4/8 threads -----------------------------------
  struct ThreadRun {
    int threads = 0;
    double wall_s = 0.0;
    std::uint64_t routes = 0;
    std::uint64_t digest = 0;
    std::uint64_t fallbacks = 0;
  };
  std::vector<ThreadRun> runs;
  std::size_t arena_bytes = 0;
  for (const int nthreads : {1, 4, 8}) {
    ThreadRun run;
    run.threads = nthreads;
    std::vector<std::uint64_t> routes(nthreads, 0);
    std::vector<std::uint64_t> digests(nthreads, 0);
    std::vector<std::uint64_t> fallbacks(nthreads, 0);
    std::vector<std::size_t> arena(nthreads, 0);
    const auto start = Clock::now();
    std::vector<std::thread> pool;
    for (int t = 0; t < nthreads; ++t) {
      pool.emplace_back([&, t] {
        bgp::flat::FlatRouteTable table;
        for (std::size_t d = t; d < demanded.size();
             d += static_cast<std::size_t>(nthreads)) {
          const std::size_t p = demanded[d];
          const bgp::flat::PrefixInput in = input_for(p);
          table.prepare(n);
          if (!bgp::flat::propagate(in, table)) {
            ++fallbacks[t];
            continue;
          }
          for (std::uint32_t i = 0; i < n; ++i) {
            if (table.has(i, bgp::flat::FlatRouteTable::kBest)) ++routes[t];
          }
          // Order-independent combine: any partition of the demanded
          // set over any thread count must land on the same value.
          digests[t] ^= mix64(p ^ table.digest());
        }
        arena[t] = table.bytes();
      });
    }
    for (auto& th : pool) th.join();
    run.wall_s = seconds_since(start);
    for (int t = 0; t < nthreads; ++t) {
      run.routes += routes[t];
      run.digest ^= digests[t];
      run.fallbacks += fallbacks[t];
      if (arena[t] > arena_bytes) arena_bytes = arena[t];
    }
    runs.push_back(run);
    std::printf("threads=%d wall=%.3fs routes=%llu (%.0f routes/s) "
                "fallbacks=%llu digest=%016llx\n",
                nthreads, run.wall_s,
                static_cast<unsigned long long>(run.routes),
                static_cast<double>(run.routes) / run.wall_s,
                static_cast<unsigned long long>(run.fallbacks),
                static_cast<unsigned long long>(run.digest));
  }
  const bool digests_consistent = runs[0].digest == runs[1].digest &&
                                  runs[1].digest == runs[2].digest &&
                                  runs[0].routes == runs[2].routes;
  const double mean_routes_per_prefix =
      static_cast<double>(runs[0].routes) /
      static_cast<double>(demanded.size());
  const double bytes_per_route =
      mean_routes_per_prefix > 0.0
          ? static_cast<double>(arena_bytes) / mean_routes_per_prefix
          : 0.0;

  // -- Spot check against the exact Adj-RIB-In engine -----------------
  const std::size_t spot_count = smoke ? 3 : 5;
  bool spot_ok = true;
  {
    bgp::RoutingSystem rs(graph);
    rs.set_propagation_engine(bgp::PropagationEngine::kFixedPoint);
    for (std::uint32_t i = 0; i < n; ++i) {
      const bgp::RovMode mode = rov_mode_of(fg.asn_of[i]);
      if (mode == bgp::RovMode::kNone) continue;
      bgp::AsPolicy policy;
      policy.rov = mode;
      rs.set_policy(fg.asn_of[i], policy);
    }
    rs.set_vrps(vrps);
    bgp::flat::FlatRouteTable table;
    for (std::size_t s = 0; s < spot_count && spot_ok; ++s) {
      const std::size_t p = demanded[s * (demanded.size() / spot_count)];
      rs.announce({announced[p], fg.asn_of[origin_of[p]]});
      const bgp::RouteMap& exact = rs.routes_for(announced[p]);
      table.prepare(n);
      if (!bgp::flat::propagate(input_for(p), table)) {
        spot_ok = false;
        break;
      }
      std::size_t live = 0;
      for (std::uint32_t i = 0; i < n && spot_ok; ++i) {
        if (!table.has(i, bgp::flat::FlatRouteTable::kBest)) continue;
        ++live;
        const auto it = exact.find(fg.asn_of[i]);
        if (it == exact.end()) {
          spot_ok = false;
          break;
        }
        constexpr int kBest = bgp::flat::FlatRouteTable::kBest;
        const std::uint32_t nh = table.next_hop[kBest][i];
        const bgp::RouteEntry& e = it->second;
        const topology::NeighborKind cls =
            table.best_cls[i] == bgp::flat::FlatRouteTable::kCust
                ? topology::NeighborKind::kCustomer
                : table.best_cls[i] == bgp::flat::FlatRouteTable::kPeer
                      ? topology::NeighborKind::kPeer
                      : topology::NeighborKind::kProvider;
        if (e.next_hop !=
                (nh == bgp::flat::kNoIdx ? 0 : fg.asn_of[nh]) ||
            e.origin != fg.asn_of[origin_of[p]] ||
            e.learned_from != cls ||
            static_cast<std::uint8_t>(e.validity) !=
                table.validity[kBest][i] ||
            e.path_len != table.path_len[kBest][i]) {
          spot_ok = false;
        }
      }
      if (live != exact.size()) spot_ok = false;
    }
  }
  std::printf("spot check vs fixed-point engine: %s\n",
              spot_ok ? "ok" : "MISMATCH");

  // -- Batched LPM over the full announced table ----------------------
  // The table also carries a nested /24 inside every 8th /20, so the
  // ancestor-chain path is actually exercised.
  std::vector<net::Ipv4Prefix> lpm_table = announced;
  for (std::size_t p = 0; p < P; p += 8) {
    lpm_table.push_back(net::Ipv4Prefix(
        net::Ipv4Address((static_cast<std::uint32_t>(p) << 12) | 0x300u),
        24));
  }
  const net::BatchedLpm lpm(lpm_table);
  std::vector<net::Ipv4Address> queries;
  queries.reserve(shape.lpm_queries);
  for (std::size_t q = 0; q < shape.lpm_queries; ++q) {
    queries.push_back(net::Ipv4Address(
        static_cast<std::uint32_t>(mix64(q ^ 0x10b4ULL))));
  }
  const auto lpm_start = Clock::now();
  const std::vector<std::int32_t> lpm_hits = lpm.lookup_batch(queries);
  const double lpm_s = seconds_since(lpm_start);

  net::PrefixTrie<std::uint8_t> trie;
  for (const auto& prefix : lpm.prefixes()) trie.insert(prefix, 1);
  bool lpm_ok = true;
  std::size_t matched = 0;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    if (lpm_hits[q] >= 0) ++matched;
    if (q % 64 != 0) continue;  // oracle sample
    const auto oracle = trie.longest_match(queries[q]);
    const bool hit = lpm_hits[q] >= 0;
    if (hit != oracle.has_value() ||
        (hit && lpm.prefixes()[static_cast<std::size_t>(lpm_hits[q])] !=
                    oracle->first)) {
      lpm_ok = false;
    }
  }
  std::printf("lpm: %zu prefixes, %zu queries (%zu matched) in %.3fs "
              "(%.0f q/s), oracle %s\n",
              lpm.size(), queries.size(), matched, lpm_s,
              static_cast<double>(queries.size()) / lpm_s,
              lpm_ok ? "ok" : "MISMATCH");

  // -- Report ----------------------------------------------------------
  const ThreadRun& r8 = runs[2];
  const bool scale_ok = !smoke ? (n >= 50000 && P >= 100000) : true;
  const bool wall_met = r8.wall_s <= shape.wall_ceiling_s;
  const bool ok = digests_consistent && spot_ok && lpm_ok && scale_ok &&
                  runs[0].fallbacks == 0 && wall_met;

  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write %s\n", out_path);
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"smoke\": %s,\n", smoke ? "true" : "false");
  std::fprintf(f,
               "  \"world\": {\"as_count\": %zu, \"p2c_edges\": %zu, "
               "\"p2p_edges\": %zu, \"caida_bytes\": %zu, "
               "\"load_s\": %.4f, \"flat_compile_s\": %.4f},\n",
               n, loaded.stats.p2c_edges, loaded.stats.p2p_edges,
               caida_text.size(), load_s, compile_s);
  std::fprintf(f,
               "  \"prefixes\": {\"announced\": %zu, \"demanded\": %zu, "
               "\"lpm_table\": %zu},\n",
               P, demanded.size(), lpm.size());
  std::fprintf(f, "  \"propagation\": {\n    \"rounds\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    std::fprintf(f,
                 "      {\"threads\": %d, \"wall_s\": %.4f, "
                 "\"routes\": %llu, \"routes_per_sec\": %.0f}%s\n",
                 runs[i].threads, runs[i].wall_s,
                 static_cast<unsigned long long>(runs[i].routes),
                 static_cast<double>(runs[i].routes) / runs[i].wall_s,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f,
               "    ],\n    \"digests_thread_invariant\": %s,\n"
               "    \"fallbacks\": %llu,\n"
               "    \"arena_bytes\": %zu,\n"
               "    \"bytes_per_route\": %.2f\n  },\n",
               digests_consistent ? "true" : "false",
               static_cast<unsigned long long>(runs[0].fallbacks),
               arena_bytes, bytes_per_route);
  std::fprintf(f,
               "  \"lpm\": {\"queries\": %zu, \"matched\": %zu, "
               "\"wall_s\": %.4f, \"queries_per_sec\": %.0f, "
               "\"oracle_ok\": %s},\n",
               queries.size(), matched, lpm_s,
               static_cast<double>(queries.size()) / lpm_s,
               lpm_ok ? "true" : "false");
  std::fprintf(f, "  \"spot_check\": {\"prefixes\": %zu, \"ok\": %s},\n",
               spot_count, spot_ok ? "true" : "false");
  std::fprintf(f,
               "  \"targets\": {\"full_round_wall_s\": {\"target\": %.1f, "
               "\"actual\": %.4f, \"met\": %s}},\n",
               shape.wall_ceiling_s, r8.wall_s, wall_met ? "true" : "false");
  std::fprintf(f, "  \"peak_rss_kb\": %zu,\n", read_status_kb("VmHWM:"));
  std::fprintf(f, "  \"ok\": %s\n}\n", ok ? "true" : "false");
  std::fclose(f);
  std::printf("wrote %s (ok=%s)\n", out_path, ok ? "true" : "false");
  return ok ? 0 : 1;
}
