// bench_snapshot — epoch-snapshot engine cost model vs the replica
// baseline: memory per worker, peak resident memory for an 8-thread
// round, and publish latency.
//
// The replica engine pays a full private Scenario per worker; the
// epoch-snapshot engine pays one immutable frozen world per publish
// plus a thin plane clone per reader. This bench quantifies both sides
// of that trade on the standard bench fixture and records them in
// BENCH_snapshot.json:
//
//   * bytes held per worker while 8 workers are alive (glibc
//     mallinfo2 heap delta; 0 on non-glibc builds),
//   * peak resident memory (VmHWM, reset per phase via
//     /proc/self/clear_refs) of a complete 8-thread round, engine
//     setup included — the snapshot round must stay at or under half
//     the replica round's peak,
//   * publish latency: wall time of EpochPublisher::publish(), i.e.
//     deep-copy + freeze-warm + digest of the whole build world.
//
// Both engines' rounds are checked bit-identical to a serial reference
// first; a reported saving can never come from different work.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "bench/common.h"
#include "core/parallel_round.h"
#include "snapshot/epoch_publisher.h"
#include "snapshot/world_source.h"

namespace {

using namespace rovista;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

scenario::ScenarioParams fixture_params() {
  // Same fixture as bench_parallel_round, so the two benches' numbers
  // compose.
  scenario::ScenarioParams params;
  params.seed = 11;
  params.topology.tier1_count = 6;
  params.topology.tier2_count = 20;
  params.topology.tier3_count = 50;
  params.topology.stub_count = 180;
  params.tnode_prefix_count = 6;
  params.measured_as_count = 24;
  params.hosts_per_measured_as = 4;
  return params;
}

bool rounds_identical(const core::MeasurementRound& a,
                      const core::MeasurementRound& b) {
  if (a.experiments_run != b.experiments_run ||
      a.inconclusive != b.inconclusive ||
      a.observations.size() != b.observations.size() ||
      a.scores.size() != b.scores.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.observations.size(); ++i) {
    const auto& x = a.observations[i];
    const auto& y = b.observations[i];
    if (x.vvp_as != y.vvp_as || x.vvp.value() != y.vvp.value() ||
        x.tnode.value() != y.tnode.value() || x.verdict != y.verdict) {
      return false;
    }
  }
  for (std::size_t i = 0; i < a.scores.size(); ++i) {
    const auto& x = a.scores[i];
    const auto& y = b.scores[i];
    if (x.asn != y.asn ||
        std::memcmp(&x.score, &y.score, sizeof(double)) != 0 ||
        x.vvp_count != y.vvp_count) {
      return false;
    }
  }
  return true;
}

// -- Memory probes ----------------------------------------------------

std::size_t heap_bytes() {
#if defined(__GLIBC__) && defined(__GLIBC_PREREQ)
#if __GLIBC_PREREQ(2, 33)
  const struct mallinfo2 mi = mallinfo2();
  return static_cast<std::size_t>(mi.uordblks) +
         static_cast<std::size_t>(mi.hblkhd);
#else
  return 0;
#endif
#else
  return 0;
#endif
}

void release_freed_heap() {
#if defined(__GLIBC__)
  // Return allocator-cached pages to the kernel so the next phase's
  // VmHWM delta measures that phase's own allocations, not arena reuse.
  malloc_trim(0);
#endif
}

// Reset the kernel's peak-RSS watermark (VmHWM). Returns false where
// /proc/self/clear_refs is unavailable; peaks are then monotonic and
// the JSON flags them as such.
bool reset_peak_rss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return std::fclose(f) == 0 && ok;
}

long read_status_kb(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return -1;
  char line[256];
  long kb = -1;
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0) {
      std::sscanf(line + key_len, "%ld", &kb);
      break;
    }
  }
  std::fclose(f);
  return kb;
}

long peak_rss_kb() { return read_status_kb("VmHWM:"); }
long current_rss_kb() { return read_status_kb("VmRSS:"); }

// Heap bytes held while `count` live workers from `factory` coexist.
std::size_t bytes_per_worker(const core::ReplicaFactory& factory, int count) {
  std::vector<std::unique_ptr<core::MeasurementReplica>> held;
  held.reserve(count);
  const std::size_t before = heap_bytes();
  for (int i = 0; i < count; ++i) held.push_back(factory());
  const std::size_t after = heap_bytes();
  return after > before ? (after - before) / static_cast<std::size_t>(count)
                        : 0;
}

struct PhasePeak {
  long baseline_kb = -1;  // VmRSS entering the phase
  long peak_kb = -1;      // VmHWM at phase end
  long delta_kb() const {
    return peak_kb >= 0 && baseline_kb >= 0 ? peak_kb - baseline_kb : -1;
  }
};

core::ParallelRoundConfig round_config(const core::RovistaConfig& config,
                                       int threads) {
  core::ParallelRoundConfig rc;
  rc.experiment = config.experiment;
  rc.scoring = config.scoring;
  rc.num_threads = threads;
  return rc;
}

}  // namespace

int main() {
  rovista::bench::print_header(
      "bench_snapshot — epoch-snapshot vs replica memory + publish latency",
      "one frozen world for N readers (DESIGN.md, \"Epoch lifecycle\"): "
      "8-thread peak RSS target <= 0.5x the replica engine's");

  const scenario::ScenarioParams params = fixture_params();
  const util::Date date = params.start + 150;
  core::RovistaConfig config;
  config.scoring.min_vvps_per_as = 2;
  config.scoring.min_tnodes = 2;
  constexpr int kThreads = 8;
  constexpr int kPublishes = 5;

  // Discovery on a throwaway world (mutates host state), freed before
  // any memory measurement.
  std::printf("building fixture world (seed %llu) ...\n",
              static_cast<unsigned long long>(params.seed));
  std::vector<scan::Vvp> vvps;
  std::vector<scan::Tnode> tnodes;
  {
    scenario::Scenario s(params);
    s.advance_to(date);
    scan::MeasurementClient client_a(s.plane(), s.client_as_a(),
                                     s.client_addr_a());
    scan::MeasurementClient client_b(s.plane(), s.client_as_b(),
                                     s.client_addr_b());
    core::Rovista rovista(s.plane(), client_a, client_b, config);
    const auto snapshot = s.collector().snapshot(s.routing());
    tnodes = rovista.acquire_tnodes(snapshot, s.current_vrps(),
                                    s.rov_reference_ases(s.current(), 10),
                                    s.non_rov_reference_ases(s.current(), 10));
    vvps = rovista.acquire_vvps(s.vvp_candidates());
  }
  std::printf("fixture: %zu vVPs x %zu tNodes\n", vvps.size(), tnodes.size());

  // Serial reference for the identity checks.
  core::MeasurementRound serial;
  {
    scenario::Scenario world(params);
    world.advance_to(date);
    scan::MeasurementClient client_a(world.plane(), world.client_as_a(),
                                     world.client_addr_a());
    scan::MeasurementClient client_b(world.plane(), world.client_as_b(),
                                     world.client_addr_b());
    core::Rovista rovista(world.plane(), client_a, client_b, config);
    serial = rovista.run_round(vvps, tnodes);
  }

  const bool peak_resettable = reset_peak_rss();
  if (!peak_resettable) {
    std::printf("note: /proc/self/clear_refs unavailable, "
                "peak RSS is monotonic across phases\n");
  }

  // -- Setup (unmeasured): build world + publish latency --------------
  //
  // The build world stays alive through both measured phases below: the
  // longitudinal engine keeps its tracking world regardless of engine,
  // so it belongs to the common baseline, not to either engine's bill.
  auto setup_start = Clock::now();
  snapshot::EpochPublisher pub(params);
  pub.advance_to(date);
  const double build_s = seconds_since(setup_start);

  // Publish latency: each publish deep-copies the build world, warms
  // and freezes the copy's routing, and digests it.
  double publish_s[kPublishes] = {0.0};
  for (int i = 0; i < kPublishes; ++i) {
    const auto start = Clock::now();
    snapshot::EpochRef epoch = pub.publish();
    publish_s[i] = seconds_since(start);
  }

  // -- Phase 1: epoch-snapshot engine, one publish + 8-thread round ---
  release_freed_heap();
  (void)reset_peak_rss();
  PhasePeak snap_peak;
  snap_peak.baseline_kb = current_rss_kb();
  core::MeasurementRound snap_round;
  std::size_t reader_bytes = 0;
  double snap_round_s = 0.0;
  {
    snapshot::EpochRef epoch = pub.publish();
    const core::ReplicaFactory reader_factory =
        snapshot::make_reader_factory(epoch);
    reader_bytes = bytes_per_worker(reader_factory, kThreads);

    const core::ParallelRoundRunner runner(reader_factory,
                                           round_config(config, kThreads));
    const auto start = Clock::now();
    snap_round = runner.run(vvps, tnodes);
    snap_round_s = seconds_since(start);
  }
  snap_peak.peak_kb = peak_rss_kb();

  // -- Phase 2: replica engine, 8-thread round ------------------------
  release_freed_heap();
  (void)reset_peak_rss();
  PhasePeak repl_peak;
  repl_peak.baseline_kb = current_rss_kb();
  core::MeasurementRound repl_round;
  std::size_t replica_bytes = 0;
  double repl_round_s = 0.0;
  {
    const core::ReplicaFactory replica_factory =
        scenario::make_replica_factory(params, date);
    replica_bytes = bytes_per_worker(replica_factory, kThreads);

    const core::ParallelRoundRunner runner(replica_factory,
                                           round_config(config, kThreads));
    const auto start = Clock::now();
    repl_round = runner.run(vvps, tnodes);
    repl_round_s = seconds_since(start);
  }
  repl_peak.peak_kb = peak_rss_kb();

  const bool snap_identical = rounds_identical(serial, snap_round);
  const bool repl_identical = rounds_identical(serial, repl_round);

  double publish_mean = 0.0, publish_min = publish_s[0],
         publish_max = publish_s[0];
  for (const double s : publish_s) {
    publish_mean += s / kPublishes;
    if (s < publish_min) publish_min = s;
    if (s > publish_max) publish_max = s;
  }

  std::printf("world build+advance      %8.3f s\n", build_s);
  std::printf("publish latency          mean %.3f ms  min %.3f ms  "
              "max %.3f ms  (%d publishes)\n",
              publish_mean * 1e3, publish_min * 1e3, publish_max * 1e3,
              kPublishes);
  std::printf("bytes held per worker    snapshot reader %zu  "
              "replica world %zu  (x%d workers)\n",
              reader_bytes, replica_bytes, kThreads);
  std::printf("8-thread round           snapshot %.3f s  replica %.3f s  "
              "(%s / %s)\n",
              snap_round_s, repl_round_s,
              snap_identical ? "bit-identical" : "MISMATCH",
              repl_identical ? "bit-identical" : "MISMATCH");
  const double peak_ratio =
      snap_peak.delta_kb() > 0 && repl_peak.delta_kb() > 0
          ? static_cast<double>(snap_peak.delta_kb()) /
                static_cast<double>(repl_peak.delta_kb())
          : -1.0;
  std::printf("peak RSS over baseline   snapshot %ld KiB  replica %ld KiB  "
              "ratio %.3f (target <= 0.5)\n",
              snap_peak.delta_kb(), repl_peak.delta_kb(), peak_ratio);

  std::FILE* f = std::fopen("BENCH_snapshot.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FAIL: cannot write BENCH_snapshot.json\n");
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f,
               "  \"scenario\": {\"seed\": %llu, \"threads\": %d, "
               "\"vvps\": %zu, \"tnodes\": %zu},\n",
               static_cast<unsigned long long>(params.seed), kThreads,
               vvps.size(), tnodes.size());
  std::fprintf(f,
               "  \"publish_latency\": {\"publishes\": %d, \"mean_ms\": %.3f, "
               "\"min_ms\": %.3f, \"max_ms\": %.3f, "
               "\"world_build_s\": %.6f},\n",
               kPublishes, publish_mean * 1e3, publish_min * 1e3,
               publish_max * 1e3, build_s);
  std::fprintf(f,
               "  \"bytes_per_worker\": {\"snapshot_reader\": %zu, "
               "\"replica_world\": %zu, \"ratio\": %.4f},\n",
               reader_bytes, replica_bytes,
               replica_bytes > 0 ? static_cast<double>(reader_bytes) /
                                       static_cast<double>(replica_bytes)
                                 : -1.0);
  std::fprintf(f,
               "  \"peak_rss_8thread\": {\"resettable\": %s, "
               "\"snapshot_baseline_kb\": %ld, \"snapshot_peak_kb\": %ld, "
               "\"snapshot_delta_kb\": %ld, \"replica_baseline_kb\": %ld, "
               "\"replica_peak_kb\": %ld, \"replica_delta_kb\": %ld, "
               "\"ratio\": %.4f, \"target\": 0.5, \"met\": %s},\n",
               peak_resettable ? "true" : "false", snap_peak.baseline_kb,
               snap_peak.peak_kb, snap_peak.delta_kb(), repl_peak.baseline_kb,
               repl_peak.peak_kb, repl_peak.delta_kb(), peak_ratio,
               peak_ratio >= 0.0 && peak_ratio <= 0.5 ? "true" : "false");
  std::fprintf(f,
               "  \"round_s\": {\"snapshot\": %.6f, \"replica\": %.6f},\n",
               snap_round_s, repl_round_s);
  std::fprintf(f, "  \"identical\": %s\n",
               snap_identical && repl_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_snapshot.json\n");

  if (!snap_identical || !repl_identical) {
    std::fprintf(stderr, "FAIL: engine output diverged from serial\n");
    return 1;
  }
  if (peak_ratio < 0.0 || peak_ratio > 0.5) {
    std::fprintf(stderr,
                 "WARNING: snapshot peak RSS ratio %.3f misses the 0.5x "
                 "target\n",
                 peak_ratio);
  }
  return 0;
}
