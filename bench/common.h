// Shared setup for the experiment-regeneration benches.
//
// Every bench builds the same "bench-scale" world (deterministic seed,
// moderate size so the full suite runs in minutes), runs the RoVista
// pipeline at one or more snapshot dates, and prints the paper's
// table/figure rows. Absolute values differ from the paper — the
// substrate is a simulator, not the 2021-2023 Internet — but the shapes
// (who wins, what fraction sits where, where crossovers fall) are the
// reproduction targets; EXPERIMENTS.md records both sides.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/longitudinal.h"
#include "core/rovista.h"
#include "scenario/scenario.h"
#include "util/csv.h"

namespace rovista::bench {

inline scenario::ScenarioParams bench_params(std::uint64_t seed = 42) {
  scenario::ScenarioParams params;
  params.seed = seed;
  params.topology.tier1_count = 8;
  params.topology.tier2_count = 28;
  params.topology.tier3_count = 70;
  params.topology.stub_count = 320;
  params.tnode_prefix_count = 10;
  params.moas_invalid_count = 10;
  params.surge_invalid_count = 40;
  params.measured_as_count = 110;
  params.hosts_per_measured_as = 5;
  params.collector_peer_count = 40;
  params.topology.tier2_peer_prob = 0.4;
  params.topology.stub_multihome_prob = 0.5;
  return params;
}

/// The bench world: scenario + clients + framework + longitudinal store.
struct World {
  std::unique_ptr<scenario::Scenario> scenario;
  std::unique_ptr<scan::MeasurementClient> client_a;
  std::unique_ptr<scan::MeasurementClient> client_b;
  std::unique_ptr<core::Rovista> rovista;
  core::LongitudinalStore store;

  explicit World(scenario::ScenarioParams params = bench_params()) {
    scenario = std::make_unique<scenario::Scenario>(std::move(params));
    client_a = std::make_unique<scan::MeasurementClient>(
        scenario->plane(), scenario->client_as_a(), scenario->client_addr_a());
    client_b = std::make_unique<scan::MeasurementClient>(
        scenario->plane(), scenario->client_as_b(), scenario->client_addr_b());
    core::RovistaConfig config;
    config.scoring.min_vvps_per_as = 2;
    config.scoring.min_tnodes = 3;
    rovista = std::make_unique<core::Rovista>(scenario->plane(), *client_a,
                                              *client_b, config);
  }

  struct Snapshot {
    std::vector<scan::Tnode> tnodes;
    std::vector<scan::Vvp> vvps;
    core::MeasurementRound round;
  };

  /// Advance to `date`, run the full pipeline, record scores.
  Snapshot run_snapshot(util::Date date) {
    scenario->advance_to(date);
    Snapshot snap;
    const auto collector_view =
        scenario->collector().snapshot(scenario->routing());
    snap.tnodes = rovista->acquire_tnodes(
        collector_view, scenario->current_vrps(),
        scenario->rov_reference_ases(date, 10),
        scenario->non_rov_reference_ases(date, 10));
    snap.vvps = rovista->acquire_vvps(scenario->vvp_candidates());
    snap.round = rovista->run_round(snap.vvps, snap.tnodes);
    store.record(date, snap.round.scores);
    return snap;
  }

  /// Monthly snapshot dates across the window.
  std::vector<util::Date> monthly_dates(int step_days = 30) const {
    std::vector<util::Date> dates;
    for (util::Date d = scenario->start(); d <= scenario->end();
         d += step_days) {
      dates.push_back(d);
    }
    return dates;
  }
};

inline void print_header(const char* experiment, const char* paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("==============================================================\n");
}

}  // namespace rovista::bench
