// Figure 9 + §7.4: collateral damage. The TDC-like AS deploys full ROV
// but still reaches one tNode: its only route is the covering valid /20
// through a non-validating provider, and that provider's FIB prefers the
// more-specific invalid /24.
#include "bench/common.h"

#include "dataplane/traceroute.h"

int main() {
  using namespace rovista;
  bench::print_header("Figure 9 — collateral damage (TDC/DTAG case study)",
                      "IMC'23 RoVista, Fig. 9 (§7.4)");

  bench::World world;
  const auto& cs = world.scenario->cases();
  const auto snap = world.run_snapshot(world.scenario->start() + 120);

  const auto score_rov = world.store.latest_score(cs.cd_rov_as);
  const auto score_provider = world.store.latest_score(cs.cd_nonrov_provider);
  std::printf("TDC-like (deploys full ROV)      score: %s\n",
              score_rov ? util::fmt_double(*score_rov, 1).c_str() : "n/a");
  std::printf("DTAG-like (no ROV, its provider) score: %s\n\n",
              score_provider ? util::fmt_double(*score_provider, 1).c_str()
                             : "n/a");

  // Control-plane view at both ASes for the two prefixes of the figure.
  auto& routing = world.scenario->routing();
  const auto show = [&](topology::Asn asn, const char* name) {
    std::printf("%s BGP entries:\n", name);
    for (const auto& prefix : {cs.cd_valid_prefix, cs.cd_invalid_prefix}) {
      const auto* entry = routing.route_at(asn, prefix);
      if (entry == nullptr) {
        std::printf("  %-18s (no route — filtered)\n",
                    prefix.to_string().c_str());
      } else {
        const auto path = routing.as_path(asn, prefix);
        std::string path_str;
        for (const auto hop : path) path_str += "AS" + std::to_string(hop) + " ";
        std::printf("  %-18s via %s(%s)\n", prefix.to_string().c_str(),
                    path_str.c_str(),
                    rpki::validity_name(entry->validity));
      }
    }
  };
  show(cs.cd_rov_as, "TDC-like");
  show(cs.cd_nonrov_provider, "DTAG-like");

  // Data-plane traceroute toward the tNode: the packet follows the /20
  // at TDC, then the /24 at DTAG, ending at the invalid origin.
  const net::Ipv4Address tnode_addr(cs.cd_invalid_prefix.address().value() +
                                    10);
  const auto tr = dataplane::tcp_traceroute(world.scenario->plane(),
                                            cs.cd_rov_as, tnode_addr, 80);
  std::printf("\ntraceroute from TDC-like to %s: %s, hops:",
              tnode_addr.to_string().c_str(),
              tr.reached ? "REACHED (collateral damage)" : "blocked");
  for (const auto hop : tr.hops) std::printf(" AS%u", hop);
  std::printf("\n(tNodes this snapshot: %zu)\n", snap.tnodes.size());
  std::printf(
      "\npaper shape: the ROV AS scores >90%% but not 100%% (TDC: 92.1%%);\n"
      "its successful traceroutes cross the 0%%-score provider, which\n"
      "prefers the most-specific invalid route.\n");
  return 0;
}
