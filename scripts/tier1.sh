#!/usr/bin/env bash
# Tier-1 verification:
#   1. regular build + full test suite (the ROADMAP.md tier-1 command),
#   2. ThreadSanitizer build (-DSANITIZE=thread) of the concurrency
#      surface — the parallel-round determinism harness plus the thread
#      pool / logging tests — and a TSan-clean run of it,
#   3. ASan+UBSan build (-DSANITIZE=address+undefined) of the
#      incremental-engine surface — delta computation, the longitudinal
#      index, the cache-reuse rounds, and the checkpoint codec's
#      corruption/truncation battery (the loader must stay clean on
#      attacker-grade input) — and a clean run of it,
#   4. ASan/UBSan fault soak: the RTR wire-error and lifecycle suites
#      plus the fault-injection suites, including the 200-day
#      high-fault-rate soak (FaultSoak) that drives relying-party runs,
#      corrupt-PDU teardowns, and per-AS view installs hot,
#   5. crash/resume end-to-end: a 6-round series killed after round 3
#      (--die-after simulates SIGKILL: no destructors, no exit
#      checkpoint), resumed from its checkpoint at a different thread
#      count, must publish CSVs byte-identical to an uninterrupted run,
#   6. the same crash/resume plus an incremental-vs-full byte-diff on a
#      SLURM-policy series (--slurm-fraction): delta installs must run
#      through the per-view dirty-set path of apply_vrp_delta, and the
#      published CSVs may not depend on incremental mode, thread count,
#      or where the series was interrupted,
#   7. the same contract under fault injection (--rp-failure-rate /
#      --rp-divergence-fraction / --rtr-drop-rate): kill mid-series,
#      resume at a different thread count, and byte-diff against both an
#      uninterrupted incremental run and a full recompute,
#   8. TSan epoch-snapshot stress: multi-seed readers-vs-installer
#      harness (reader threads pinned to an epoch across >= 3
#      concurrent publishes, including a zero-VRP-delta fault-window
#      flip) plus the lifecycle/immutability property suites, all under
#      -DSANITIZE=thread (runs as stage 2b, before the ASan stages),
#   9. engine equivalence: the epoch-snapshot and replica engines must
#      publish byte-identical CSVs, and a faulted series killed under
#      one engine must resume under the other and byte-match an
#      uninterrupted run, degradation.csv included,
#  10. docs consistency: every `--flag` the built CLI prints in its
#      --help output must appear in README.md, and every
#      `docs/FORMATS.md §N` / `FORMATS.md section N` reference made
#      from code or data files must resolve to a `## N.` heading in
#      docs/FORMATS.md (runs as stage 1b, right after the build),
#  11. bench_scale smoke: the scaling bench's --smoke shape (~5k ASes)
#      must complete under a wall-clock ceiling with every internal
#      check green ("ok": true) — digests thread-invariant, zero flat
#      fallbacks, LPM spot-checks passing (stage 1c),
#  12. RVLA archive end-to-end: a longitudinal run with --archive, then
#      `rovista analyze --publish` straight off the archive, byte-diffed
#      against the CSVs the in-memory store published during the run;
#      plus bench_analytics --smoke under a wall-clock ceiling with its
#      streaming-vs-store identity gates green ("ok": true).
#
# Every stage runs under its own timeout and the script fails fast: the
# first stage to fail (or hang past its budget) stops the run with a
# labeled message. ctest gets -j consistently; override parallelism with
# JOBS=N.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

STAGE=""
stage() {
  STAGE="$1"
  echo "=== tier1: $STAGE ==="
}
trap '[ -n "$STAGE" ] && echo "tier-1 FAILED during: $STAGE" >&2' ERR

# Per-stage timeout (seconds as $1); 124/137 from `timeout` means hung.
t() { timeout --kill-after=30 "$@"; }

stage "build + full test suite"
t 900 cmake -B build -S .
t 1800 cmake --build build -j "$JOBS"
t 1800 ctest --test-dir build --output-on-failure -j "$JOBS"

stage "docs consistency (--help flags vs README, FORMATS.md references)"
DOCS_TMP="$(mktemp -d)"
trap 'rm -rf "$DOCS_TMP"' EXIT
# --help exits non-zero by design (it is the usage path); the output is
# what we are after. Fail if it produced no flags at all.
build/tools/rovista --help > "$DOCS_TMP/help.txt" 2>&1 || true
grep -oE -- '--[a-z][a-z0-9-]*' "$DOCS_TMP/help.txt" | sort -u \
  > "$DOCS_TMP/flags.txt"
if [ ! -s "$DOCS_TMP/flags.txt" ]; then
  echo "rovista --help printed no flags" >&2
  exit 1
fi
missing=0
while IFS= read -r flag; do
  grep -q -- "$flag" README.md || {
    echo "flag $flag from --help is undocumented in README.md" >&2
    missing=1
  }
done < "$DOCS_TMP/flags.txt"
# Every FORMATS.md section referenced from code/tests/bench/tools/data
# must exist as a "## N." heading — references may not outlive the spec.
grep -rhoE 'FORMATS\.md (§|section )[0-9]+' src tests bench tools \
  | grep -oE '[0-9]+$' | sort -u > "$DOCS_TMP/refs.txt"
while IFS= read -r sec; do
  grep -qE "^## ${sec}\." docs/FORMATS.md || {
    echo "code references FORMATS.md §$sec but no '## $sec.' heading exists" >&2
    missing=1
  }
done < "$DOCS_TMP/refs.txt"
if [ "$missing" -ne 0 ]; then
  echo "docs drifted from the built CLI / format specs" >&2
  exit 1
fi

stage "bench_scale smoke (scaling contract under a wall-clock ceiling)"
# The full shape takes ~30 s; the smoke shape (~5k ASes) must stay well
# under a minute even on a loaded runner. bench_scale exits non-zero on
# any internal check failure; we also assert the emitted verdict.
t 120 build/bench/bench_scale --smoke --out "$DOCS_TMP/bench_scale_smoke.json" \
  > "$DOCS_TMP/bench_scale_smoke.log"
grep -q '"ok": true' "$DOCS_TMP/bench_scale_smoke.json" || {
  echo "bench_scale --smoke emitted ok=false" >&2
  cat "$DOCS_TMP/bench_scale_smoke.log" >&2 || true
  exit 1
}

stage "TSan parallel-round surface"
t 900 cmake -B build-tsan -S . -DSANITIZE=thread
t 1800 cmake --build build-tsan -j "$JOBS" \
  --target test_parallel_round test_util test_ipid_properties
t 1800 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ParallelRound|ThreadPool|Logging|IpIdArithmetic|Spike|BackgroundCutoff'

stage "TSan epoch-snapshot stress (readers vs concurrent installer)"
# Multi-seed readers-vs-installer harness: reader threads score against
# pinned epochs while the publisher concurrently applies deltas and
# fault-window flips (including a zero-VRP-delta flip) and publishes
# >= 3 epochs per seed. Any state shared mutably across the publish
# boundary is a TSan report here. The lifecycle/immutability property
# suites run under TSan too.
t 1800 cmake --build build-tsan -j "$JOBS" \
  --target test_snapshot test_snapshot_stress test_serve_stress
t 1800 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -L tsan-stress
t 1800 ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'SnapshotFreeze|SnapshotLifecycle|SnapshotImmutability|SnapshotReader|SnapshotFactory'

stage "ASan/UBSan incremental + checkpoint surface"
t 900 cmake -B build-asan -S . -DSANITIZE=address+undefined
t 1800 cmake --build build-asan -j "$JOBS" \
  --target test_vrp_delta test_longitudinal_index test_incremental_round \
           test_checkpoint test_rvla test_rtr test_faults
t 1800 ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'VrpDelta|LongitudinalIndex|IncrementalRound|Wire|Checkpoint|ScoreCacheRestore|Rvla'

stage "ASan/UBSan fault soak (RTR lifecycle + fault injection)"
t 1800 ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'RtrLifecycle|FaultSchedule|FaultChainScenario|FaultSoak|FaultedIncremental'

CK_TMP="$(mktemp -d)"
trap 'rm -rf "$CK_TMP" "$DOCS_TMP"' EXIT
CLI=build/tools/rovista

# The query server under ASan/UBSan: start the daemon on an ephemeral
# port, hammer it with the bundled loadgen *while* the engine is still
# publishing rounds (the loadgen bootstrap waits for round 1), then
# again at steady state, and byte-compare every recorded SCORE response
# against the CSVs the same daemon published. A torn read across an
# epoch swap, a leak, or an unflushed response on SIGTERM all fail here.
stage "ASan serve daemon: concurrent-publish burst + byte-compare + SIGTERM"
t 1800 cmake --build build-asan -j "$JOBS" --target rovista
ACLI=build-asan/tools/rovista
SERVE_DIR="$CK_TMP/serve"
mkdir -p "$SERVE_DIR"
"$ACLI" serve --seed 11 --rounds 3 --interval-days 20 --scale small \
  --port 0 --workers 2 --publish "$SERVE_DIR/pub" \
  > "$SERVE_DIR/serve.log" 2> "$SERVE_DIR/serve.err" &
SERVE_PID=$!
PORT=""
for _ in $(seq 1 300); do
  PORT="$(awk '/^LISTENING/ {print $2; exit}' "$SERVE_DIR/serve.log")"
  [ -n "$PORT" ] && break
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "serve daemon never printed LISTENING" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  cat "$SERVE_DIR/serve.err" >&2 || true
  exit 1
fi
t 600 "$ACLI" loadgen --port "$PORT" --requests 4000 --connections 6 \
  --threads 3 --record "$SERVE_DIR/burst1.csv" >/dev/null
for _ in $(seq 1 600); do
  grep -q '^PUBLISHED ' "$SERVE_DIR/serve.log" && break
  sleep 0.5
done
grep -q '^PUBLISHED ' "$SERVE_DIR/serve.log" || {
  echo "serve daemon never published its CSV dataset" >&2
  kill -9 "$SERVE_PID" 2>/dev/null || true
  cat "$SERVE_DIR/serve.err" >&2 || true
  exit 1
}
t 600 "$ACLI" loadgen --port "$PORT" --requests 4000 --connections 6 \
  --threads 3 --traj-fraction 0.2 --record "$SERVE_DIR/burst2.csv" \
  >/dev/null
kill -TERM "$SERVE_PID"
status=0
wait "$SERVE_PID" || status=$?
if [ "$status" -ne 0 ]; then
  echo "serve daemon exited $status on SIGTERM (sanitizer report?)" >&2
  cat "$SERVE_DIR/serve.err" >&2 || true
  exit 1
fi
grep -q '^SERVED ' "$SERVE_DIR/serve.log" || {
  echo "serve daemon exited without its SERVED summary line" >&2
  exit 1
}
t 300 "$ACLI" feedcheck --record "$SERVE_DIR/burst1.csv" \
  --published "$SERVE_DIR/pub" >/dev/null
t 300 "$ACLI" feedcheck --record "$SERVE_DIR/burst2.csv" \
  --published "$SERVE_DIR/pub" >/dev/null

stage "crash/resume byte-diff"
# `|| status=$?` (not `set +e`) — the ERR trap fires even with -e off,
# and this kill is supposed to happen.
status=0
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --checkpoint-dir "$CK_TMP/ck" --die-after 3 >/dev/null \
  || status=$?
if [ "$status" -ne 137 ]; then
  echo "expected the --die-after run to die with 137, got $status" >&2
  exit 1
fi
t 300 "$CLI" checkpoint inspect --dir "$CK_TMP/ck" >/dev/null
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --checkpoint-dir "$CK_TMP/ck" --resume --threads 4 \
  --publish "$CK_TMP/resumed" >/dev/null
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --publish "$CK_TMP/uninterrupted" >/dev/null
diff -r "$CK_TMP/resumed" "$CK_TMP/uninterrupted" >/dev/null || {
  echo "resumed series published different CSV bytes" >&2
  exit 1
}

# RVLA archive end-to-end: the round loop appends one frame per round;
# `analyze` must reproduce the published dataset byte-for-byte straight
# off the archive, and the streaming-query bench's identity gates must
# hold at smoke scale under a wall-clock ceiling.
stage "RVLA archive: analyze byte-diff + bench_analytics smoke"
t 900 "$CLI" longitudinal --seed 11 --rounds 5 --interval-days 20 \
  --scale small --archive "$CK_TMP/rvla" --publish "$CK_TMP/rvla-store" \
  >/dev/null
t 300 "$CLI" analyze --archive "$CK_TMP/rvla" >/dev/null
t 300 "$CLI" analyze --archive "$CK_TMP/rvla" \
  --publish "$CK_TMP/rvla-analyze" >/dev/null
diff -r "$CK_TMP/rvla-store" "$CK_TMP/rvla-analyze" >/dev/null || {
  echo "analyze published different CSV bytes than the in-memory store" >&2
  exit 1
}
t 120 build/bench/bench_analytics --smoke \
  --out "$CK_TMP/bench_analytics_smoke.json" \
  > "$CK_TMP/bench_analytics_smoke.log"
grep -q '"ok": true' "$CK_TMP/bench_analytics_smoke.json" || {
  echo "bench_analytics --smoke emitted ok=false" >&2
  cat "$CK_TMP/bench_analytics_smoke.log" >&2 || true
  exit 1
}

# SLURM-policy series: crash/resume and incremental-vs-full byte-identity
# with local exceptions in play.
stage "SLURM crash/resume + incremental-vs-full byte-diff"
status=0
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --slurm-fraction 0.35 --checkpoint-dir "$CK_TMP/slurm-ck" \
  --die-after 2 >/dev/null || status=$?
if [ "$status" -ne 137 ]; then
  echo "expected the SLURM --die-after run to die with 137, got $status" >&2
  exit 1
fi
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --slurm-fraction 0.35 --checkpoint-dir "$CK_TMP/slurm-ck" \
  --resume --threads 4 --publish "$CK_TMP/slurm-resumed" >/dev/null
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --slurm-fraction 0.35 --publish "$CK_TMP/slurm-incr" \
  >/dev/null
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small --slurm-fraction 0.35 --incremental off \
  --publish "$CK_TMP/slurm-full" >/dev/null
diff -r "$CK_TMP/slurm-resumed" "$CK_TMP/slurm-incr" >/dev/null || {
  echo "SLURM resumed series published different CSV bytes" >&2
  exit 1
}
diff -r "$CK_TMP/slurm-incr" "$CK_TMP/slurm-full" >/dev/null || {
  echo "SLURM incremental series diverged from full recompute" >&2
  exit 1
}

# Fault-injected series: the checkpoint lands mid-failure-window (the
# RVCP version-2 container), the resume replays the same fault world,
# and neither incremental mode, thread count, nor the interruption point
# may change a published byte — degradation.csv included.
stage "fault-injection crash/resume + incremental-vs-full byte-diff"
FAULT_KNOBS="--rp-failure-rate 0.3 --rp-divergence-fraction 0.25 \
  --rtr-drop-rate 0.3"
status=0
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --checkpoint-dir "$CK_TMP/fault-ck" \
  --die-after 3 >/dev/null || status=$?
if [ "$status" -ne 137 ]; then
  echo "expected the faulted --die-after run to die with 137, got $status" >&2
  exit 1
fi
t 300 "$CLI" checkpoint inspect --dir "$CK_TMP/fault-ck" >/dev/null
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --checkpoint-dir "$CK_TMP/fault-ck" \
  --resume --threads 4 --publish "$CK_TMP/fault-resumed" >/dev/null
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --publish "$CK_TMP/fault-incr" >/dev/null
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --incremental off \
  --publish "$CK_TMP/fault-full" >/dev/null
if [ ! -s "$CK_TMP/fault-incr/degradation.csv" ]; then
  echo "faulted series published no degradation.csv" >&2
  exit 1
fi
diff -r "$CK_TMP/fault-resumed" "$CK_TMP/fault-incr" >/dev/null || {
  echo "faulted resumed series published different CSV bytes" >&2
  exit 1
}
diff -r "$CK_TMP/fault-incr" "$CK_TMP/fault-full" >/dev/null || {
  echo "faulted incremental series diverged from full recompute" >&2
  exit 1
}

# Epoch-snapshot vs replica engine: the execution strategy may not
# change a published byte, and RVCP checkpoints must cross engines — a
# faulted series killed under the replica engine resumes under the
# snapshot engine and still byte-matches an uninterrupted
# snapshot-engine run, degradation.csv included.
stage "engine equivalence byte-diff (snapshot vs replica)"
t 900 "$CLI" longitudinal --seed 11 --rounds 3 --interval-days 20 \
  --scale small --engine snapshot --threads 4 \
  --publish "$CK_TMP/eng-snap" >/dev/null
t 900 "$CLI" longitudinal --seed 11 --rounds 3 --interval-days 20 \
  --scale small --engine replica --threads 4 \
  --publish "$CK_TMP/eng-repl" >/dev/null
diff -r "$CK_TMP/eng-snap" "$CK_TMP/eng-repl" >/dev/null || {
  echo "snapshot and replica engines published different CSV bytes" >&2
  exit 1
}
status=0
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --engine replica \
  --checkpoint-dir "$CK_TMP/eng-ck" --die-after 3 >/dev/null || status=$?
if [ "$status" -ne 137 ]; then
  echo "expected the replica-engine --die-after run to die with 137, got $status" >&2
  exit 1
fi
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --engine snapshot \
  --checkpoint-dir "$CK_TMP/eng-ck" --resume --threads 4 \
  --publish "$CK_TMP/eng-resumed" >/dev/null
# shellcheck disable=SC2086
t 900 "$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 \
  --scale small $FAULT_KNOBS --engine snapshot \
  --publish "$CK_TMP/eng-uninterrupted" >/dev/null
if [ ! -s "$CK_TMP/eng-uninterrupted/degradation.csv" ]; then
  echo "snapshot-engine faulted series published no degradation.csv" >&2
  exit 1
fi
diff -r "$CK_TMP/eng-resumed" "$CK_TMP/eng-uninterrupted" >/dev/null || {
  echo "cross-engine resumed series published different CSV bytes" >&2
  exit 1
}

STAGE=""
echo "tier-1 OK (tests + docs consistency + bench_scale smoke" \
     "+ TSan parallel round + TSan snapshot stress" \
     "+ ASan/UBSan incremental + checkpoint corruption battery" \
     "+ ASan fault soak + crash/resume byte-diff + SLURM byte-diff" \
     "+ fault byte-diff + engine-equivalence byte-diff" \
     "+ RVLA analyze byte-diff + bench_analytics smoke)"
