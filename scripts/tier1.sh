#!/usr/bin/env bash
# Tier-1 verification:
#   1. regular build + full test suite (the ROADMAP.md tier-1 command),
#   2. ThreadSanitizer build (-DSANITIZE=thread) of the concurrency
#      surface — the parallel-round determinism harness plus the thread
#      pool / logging tests — and a TSan-clean run of it,
#   3. ASan+UBSan build (-DSANITIZE=address+undefined) of the
#      incremental-engine surface — delta computation, the longitudinal
#      index, and the cache-reuse rounds — and a clean run of it.
# ctest gets -j consistently; override parallelism with JOBS=N.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j "$JOBS" \
  --target test_parallel_round test_util test_ipid_properties
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ParallelRound|ThreadPool|Logging|IpIdArithmetic|Spike|BackgroundCutoff'

cmake -B build-asan -S . -DSANITIZE=address+undefined
cmake --build build-asan -j "$JOBS" \
  --target test_vrp_delta test_longitudinal_index test_incremental_round
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'VrpDelta|LongitudinalIndex|IncrementalRound'

echo "tier-1 OK (tests + TSan parallel round + ASan/UBSan incremental)"
