#!/usr/bin/env bash
# Tier-1 verification:
#   1. regular build + full test suite (the ROADMAP.md tier-1 command),
#   2. ThreadSanitizer build (-DSANITIZE=thread) of the concurrency
#      surface — the parallel-round determinism harness plus the thread
#      pool / logging tests — and a TSan-clean run of it,
#   3. ASan+UBSan build (-DSANITIZE=address+undefined) of the
#      incremental-engine surface — delta computation, the longitudinal
#      index, the cache-reuse rounds, and the checkpoint codec's
#      corruption/truncation battery (the loader must stay clean on
#      attacker-grade input) — and a clean run of it,
#   4. crash/resume end-to-end: a 6-round series killed after round 3
#      (--die-after simulates SIGKILL: no destructors, no exit
#      checkpoint), resumed from its checkpoint at a different thread
#      count, must publish CSVs byte-identical to an uninterrupted run,
#   5. the same crash/resume plus an incremental-vs-full byte-diff on a
#      SLURM-policy series (--slurm-fraction): delta installs must run
#      through the per-view dirty-set path of apply_vrp_delta, and the
#      published CSVs may not depend on incremental mode, thread count,
#      or where the series was interrupted. (The ASan stage already
#      covers the SlurmIncrementalRound suite via the regex.)
# ctest gets -j consistently; override parallelism with JOBS=N.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"

cmake -B build -S .
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

cmake -B build-tsan -S . -DSANITIZE=thread
cmake --build build-tsan -j "$JOBS" \
  --target test_parallel_round test_util test_ipid_properties
ctest --test-dir build-tsan --output-on-failure -j "$JOBS" \
  -R 'ParallelRound|ThreadPool|Logging|IpIdArithmetic|Spike|BackgroundCutoff'

cmake -B build-asan -S . -DSANITIZE=address+undefined
cmake --build build-asan -j "$JOBS" \
  --target test_vrp_delta test_longitudinal_index test_incremental_round \
           test_checkpoint
ctest --test-dir build-asan --output-on-failure -j "$JOBS" \
  -R 'VrpDelta|LongitudinalIndex|IncrementalRound|Wire|Checkpoint|ScoreCacheRestore'

CK_TMP="$(mktemp -d)"
trap 'rm -rf "$CK_TMP"' EXIT
CLI=build/tools/rovista
set +e
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --checkpoint-dir "$CK_TMP/ck" --die-after 3 >/dev/null
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "expected the --die-after run to die with 137, got $status" >&2
  exit 1
fi
"$CLI" checkpoint inspect --dir "$CK_TMP/ck" >/dev/null
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --checkpoint-dir "$CK_TMP/ck" --resume --threads 4 \
  --publish "$CK_TMP/resumed" >/dev/null
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --publish "$CK_TMP/uninterrupted" >/dev/null
diff -r "$CK_TMP/resumed" "$CK_TMP/uninterrupted" >/dev/null || {
  echo "resumed series published different CSV bytes" >&2
  exit 1
}

# SLURM-policy series: crash/resume and incremental-vs-full byte-identity
# with local exceptions in play.
set +e
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --slurm-fraction 0.35 --checkpoint-dir "$CK_TMP/slurm-ck" --die-after 2 \
  >/dev/null
status=$?
set -e
if [ "$status" -ne 137 ]; then
  echo "expected the SLURM --die-after run to die with 137, got $status" >&2
  exit 1
fi
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --slurm-fraction 0.35 --checkpoint-dir "$CK_TMP/slurm-ck" --resume \
  --threads 4 --publish "$CK_TMP/slurm-resumed" >/dev/null
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --slurm-fraction 0.35 --publish "$CK_TMP/slurm-incr" >/dev/null
"$CLI" longitudinal --seed 11 --rounds 6 --interval-days 20 --scale small \
  --slurm-fraction 0.35 --incremental off \
  --publish "$CK_TMP/slurm-full" >/dev/null
diff -r "$CK_TMP/slurm-resumed" "$CK_TMP/slurm-incr" >/dev/null || {
  echo "SLURM resumed series published different CSV bytes" >&2
  exit 1
}
diff -r "$CK_TMP/slurm-incr" "$CK_TMP/slurm-full" >/dev/null || {
  echo "SLURM incremental series diverged from full recompute" >&2
  exit 1
}

echo "tier-1 OK (tests + TSan parallel round + ASan/UBSan incremental" \
     "+ checkpoint corruption battery + crash/resume byte-diff" \
     "+ SLURM incremental/resume byte-diff)"
