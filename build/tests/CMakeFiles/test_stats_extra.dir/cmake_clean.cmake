file(REMOVE_RECURSE
  "CMakeFiles/test_stats_extra.dir/test_stats_extra.cpp.o"
  "CMakeFiles/test_stats_extra.dir/test_stats_extra.cpp.o.d"
  "test_stats_extra"
  "test_stats_extra.pdb"
  "test_stats_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
