# Empty compiler generated dependencies file for test_stats_extra.
# This may be replaced when dependencies are built.
