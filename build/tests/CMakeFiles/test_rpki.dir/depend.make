# Empty dependencies file for test_rpki.
# This may be replaced when dependencies are built.
