# Empty dependencies file for test_dataplane_extra.
# This may be replaced when dependencies are built.
