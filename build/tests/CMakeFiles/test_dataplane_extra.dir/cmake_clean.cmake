file(REMOVE_RECURSE
  "CMakeFiles/test_dataplane_extra.dir/test_dataplane_extra.cpp.o"
  "CMakeFiles/test_dataplane_extra.dir/test_dataplane_extra.cpp.o.d"
  "test_dataplane_extra"
  "test_dataplane_extra.pdb"
  "test_dataplane_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dataplane_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
