file(REMOVE_RECURSE
  "CMakeFiles/test_bgpstream.dir/test_bgpstream.cpp.o"
  "CMakeFiles/test_bgpstream.dir/test_bgpstream.cpp.o.d"
  "test_bgpstream"
  "test_bgpstream.pdb"
  "test_bgpstream[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bgpstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
