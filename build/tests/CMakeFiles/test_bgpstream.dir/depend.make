# Empty dependencies file for test_bgpstream.
# This may be replaced when dependencies are built.
