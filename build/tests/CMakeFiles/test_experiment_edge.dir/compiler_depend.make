# Empty compiler generated dependencies file for test_experiment_edge.
# This may be replaced when dependencies are built.
