file(REMOVE_RECURSE
  "CMakeFiles/test_experiment_edge.dir/test_experiment_edge.cpp.o"
  "CMakeFiles/test_experiment_edge.dir/test_experiment_edge.cpp.o.d"
  "test_experiment_edge"
  "test_experiment_edge.pdb"
  "test_experiment_edge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_experiment_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
