# Empty dependencies file for test_publish.
# This may be replaced when dependencies are built.
