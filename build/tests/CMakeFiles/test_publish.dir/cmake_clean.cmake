file(REMOVE_RECURSE
  "CMakeFiles/test_publish.dir/test_publish.cpp.o"
  "CMakeFiles/test_publish.dir/test_publish.cpp.o.d"
  "test_publish"
  "test_publish.pdb"
  "test_publish[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_publish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
