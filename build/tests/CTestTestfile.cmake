# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_prefix_trie[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_timeseries[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_rpki[1]_include.cmake")
include("/root/repo/build/tests/test_rtr[1]_include.cmake")
include("/root/repo/build/tests/test_bgp[1]_include.cmake")
include("/root/repo/build/tests/test_mrt[1]_include.cmake")
include("/root/repo/build/tests/test_dataplane[1]_include.cmake")
include("/root/repo/build/tests/test_dataplane_extra[1]_include.cmake")
include("/root/repo/build/tests/test_scan[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_publish[1]_include.cmake")
include("/root/repo/build/tests/test_scenario[1]_include.cmake")
include("/root/repo/build/tests/test_validation[1]_include.cmake")
include("/root/repo/build/tests/test_bgpstream[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_seed_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_case_studies[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_experiment_edge[1]_include.cmake")
include("/root/repo/build/tests/test_stats_extra[1]_include.cmake")
include("/root/repo/build/tests/test_diagnostics[1]_include.cmake")
