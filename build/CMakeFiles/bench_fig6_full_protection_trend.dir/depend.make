# Empty dependencies file for bench_fig6_full_protection_trend.
# This may be replaced when dependencies are built.
