file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_full_protection_trend.dir/bench/bench_fig6_full_protection_trend.cpp.o"
  "CMakeFiles/bench_fig6_full_protection_trend.dir/bench/bench_fig6_full_protection_trend.cpp.o.d"
  "bench/bench_fig6_full_protection_trend"
  "bench/bench_fig6_full_protection_trend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_full_protection_trend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
