file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rov_modes.dir/bench/bench_ablation_rov_modes.cpp.o"
  "CMakeFiles/bench_ablation_rov_modes.dir/bench/bench_ablation_rov_modes.cpp.o.d"
  "bench/bench_ablation_rov_modes"
  "bench/bench_ablation_rov_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rov_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
