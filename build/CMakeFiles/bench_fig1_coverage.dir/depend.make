# Empty dependencies file for bench_fig1_coverage.
# This may be replaced when dependencies are built.
