file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_collateral_benefit.dir/bench/bench_fig8_collateral_benefit.cpp.o"
  "CMakeFiles/bench_fig8_collateral_benefit.dir/bench/bench_fig8_collateral_benefit.cpp.o.d"
  "bench/bench_fig8_collateral_benefit"
  "bench/bench_fig8_collateral_benefit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_collateral_benefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
