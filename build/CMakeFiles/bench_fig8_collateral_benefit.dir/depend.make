# Empty dependencies file for bench_fig8_collateral_benefit.
# This may be replaced when dependencies are built.
