# Empty dependencies file for bench_traceroute_xval.
# This may be replaced when dependencies are built.
