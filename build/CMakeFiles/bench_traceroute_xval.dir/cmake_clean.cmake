file(REMOVE_RECURSE
  "CMakeFiles/bench_traceroute_xval.dir/bench/bench_traceroute_xval.cpp.o"
  "CMakeFiles/bench_traceroute_xval.dir/bench/bench_traceroute_xval.cpp.o.d"
  "bench/bench_traceroute_xval"
  "bench/bench_traceroute_xval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_traceroute_xval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
