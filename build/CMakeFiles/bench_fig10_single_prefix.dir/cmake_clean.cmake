file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_single_prefix.dir/bench/bench_fig10_single_prefix.cpp.o"
  "CMakeFiles/bench_fig10_single_prefix.dir/bench/bench_fig10_single_prefix.cpp.o.d"
  "bench/bench_fig10_single_prefix"
  "bench/bench_fig10_single_prefix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_single_prefix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
