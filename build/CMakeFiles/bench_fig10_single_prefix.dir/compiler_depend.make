# Empty compiler generated dependencies file for bench_fig10_single_prefix.
# This may be replaced when dependencies are built.
