file(REMOVE_RECURSE
  "CMakeFiles/bench_coverage_stats.dir/bench/bench_coverage_stats.cpp.o"
  "CMakeFiles/bench_coverage_stats.dir/bench/bench_coverage_stats.cpp.o.d"
  "bench/bench_coverage_stats"
  "bench/bench_coverage_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_coverage_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
