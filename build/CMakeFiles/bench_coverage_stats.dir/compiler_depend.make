# Empty compiler generated dependencies file for bench_coverage_stats.
# This may be replaced when dependencies are built.
