# Empty dependencies file for bench_ablation_rovpp.
# This may be replaced when dependencies are built.
