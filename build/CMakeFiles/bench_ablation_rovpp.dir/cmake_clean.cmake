file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rovpp.dir/bench/bench_ablation_rovpp.cpp.o"
  "CMakeFiles/bench_ablation_rovpp.dir/bench/bench_ablation_rovpp.cpp.o.d"
  "bench/bench_ablation_rovpp"
  "bench/bench_ablation_rovpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rovpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
