file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_ipid_patterns.dir/bench/bench_fig3_ipid_patterns.cpp.o"
  "CMakeFiles/bench_fig3_ipid_patterns.dir/bench/bench_fig3_ipid_patterns.cpp.o.d"
  "bench/bench_fig3_ipid_patterns"
  "bench/bench_fig3_ipid_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_ipid_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
