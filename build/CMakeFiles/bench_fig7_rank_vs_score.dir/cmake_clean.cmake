file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rank_vs_score.dir/bench/bench_fig7_rank_vs_score.cpp.o"
  "CMakeFiles/bench_fig7_rank_vs_score.dir/bench/bench_fig7_rank_vs_score.cpp.o.d"
  "bench/bench_fig7_rank_vs_score"
  "bench/bench_fig7_rank_vs_score.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rank_vs_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
