# Empty compiler generated dependencies file for bench_fig7_rank_vs_score.
# This may be replaced when dependencies are built.
