# Empty dependencies file for bench_table1_tier1.
# This may be replaced when dependencies are built.
