file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_score_cdf.dir/bench/bench_fig5_score_cdf.cpp.o"
  "CMakeFiles/bench_fig5_score_cdf.dir/bench/bench_fig5_score_cdf.cpp.o.d"
  "bench/bench_fig5_score_cdf"
  "bench/bench_fig5_score_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_score_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
