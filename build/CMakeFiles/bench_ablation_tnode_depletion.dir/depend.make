# Empty dependencies file for bench_ablation_tnode_depletion.
# This may be replaced when dependencies are built.
