file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_tnode_depletion.dir/bench/bench_ablation_tnode_depletion.cpp.o"
  "CMakeFiles/bench_ablation_tnode_depletion.dir/bench/bench_ablation_tnode_depletion.cpp.o.d"
  "bench/bench_ablation_tnode_depletion"
  "bench/bench_ablation_tnode_depletion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tnode_depletion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
