file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_cloudflare_list.dir/bench/bench_fig11_cloudflare_list.cpp.o"
  "CMakeFiles/bench_fig11_cloudflare_list.dir/bench/bench_fig11_cloudflare_list.cpp.o.d"
  "bench/bench_fig11_cloudflare_list"
  "bench/bench_fig11_cloudflare_list.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_cloudflare_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
