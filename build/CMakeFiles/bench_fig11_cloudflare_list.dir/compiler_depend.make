# Empty compiler generated dependencies file for bench_fig11_cloudflare_list.
# This may be replaced when dependencies are built.
