file(REMOVE_RECURSE
  "CMakeFiles/bench_appendixA_detector.dir/bench/bench_appendixA_detector.cpp.o"
  "CMakeFiles/bench_appendixA_detector.dir/bench/bench_appendixA_detector.cpp.o.d"
  "bench/bench_appendixA_detector"
  "bench/bench_appendixA_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_appendixA_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
