# Empty dependencies file for bench_appendixA_detector.
# This may be replaced when dependencies are built.
