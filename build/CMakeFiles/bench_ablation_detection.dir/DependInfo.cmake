
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_detection.cpp" "CMakeFiles/bench_ablation_detection.dir/bench/bench_ablation_detection.cpp.o" "gcc" "CMakeFiles/bench_ablation_detection.dir/bench/bench_ablation_detection.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/validation/CMakeFiles/rovista_validation.dir/DependInfo.cmake"
  "/root/repo/build/src/bgpstream/CMakeFiles/rovista_bgpstream.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/rovista_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rovista_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scan/CMakeFiles/rovista_scan.dir/DependInfo.cmake"
  "/root/repo/build/src/dataplane/CMakeFiles/rovista_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rovista_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/rovista_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rovista_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rovista_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rovista_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
