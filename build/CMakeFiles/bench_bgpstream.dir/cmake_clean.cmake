file(REMOVE_RECURSE
  "CMakeFiles/bench_bgpstream.dir/bench/bench_bgpstream.cpp.o"
  "CMakeFiles/bench_bgpstream.dir/bench/bench_bgpstream.cpp.o.d"
  "bench/bench_bgpstream"
  "bench/bench_bgpstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bgpstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
