# Empty compiler generated dependencies file for bench_bgpstream.
# This may be replaced when dependencies are built.
