file(REMOVE_RECURSE
  "CMakeFiles/bench_table23_official_sources.dir/bench/bench_table23_official_sources.cpp.o"
  "CMakeFiles/bench_table23_official_sources.dir/bench/bench_table23_official_sources.cpp.o.d"
  "bench/bench_table23_official_sources"
  "bench/bench_table23_official_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table23_official_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
