# Empty dependencies file for bench_table23_official_sources.
# This may be replaced when dependencies are built.
