file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_collateral_damage.dir/bench/bench_fig9_collateral_damage.cpp.o"
  "CMakeFiles/bench_fig9_collateral_damage.dir/bench/bench_fig9_collateral_damage.cpp.o.d"
  "bench/bench_fig9_collateral_damage"
  "bench/bench_fig9_collateral_damage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_collateral_damage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
