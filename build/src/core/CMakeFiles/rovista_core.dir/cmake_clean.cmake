file(REMOVE_RECURSE
  "CMakeFiles/rovista_core.dir/experiment.cpp.o"
  "CMakeFiles/rovista_core.dir/experiment.cpp.o.d"
  "CMakeFiles/rovista_core.dir/longitudinal.cpp.o"
  "CMakeFiles/rovista_core.dir/longitudinal.cpp.o.d"
  "CMakeFiles/rovista_core.dir/publish.cpp.o"
  "CMakeFiles/rovista_core.dir/publish.cpp.o.d"
  "CMakeFiles/rovista_core.dir/rovista.cpp.o"
  "CMakeFiles/rovista_core.dir/rovista.cpp.o.d"
  "CMakeFiles/rovista_core.dir/scoring.cpp.o"
  "CMakeFiles/rovista_core.dir/scoring.cpp.o.d"
  "librovista_core.a"
  "librovista_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
