file(REMOVE_RECURSE
  "librovista_core.a"
)
