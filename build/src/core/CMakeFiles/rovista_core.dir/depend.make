# Empty dependencies file for rovista_core.
# This may be replaced when dependencies are built.
