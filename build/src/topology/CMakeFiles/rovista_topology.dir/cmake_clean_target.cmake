file(REMOVE_RECURSE
  "librovista_topology.a"
)
