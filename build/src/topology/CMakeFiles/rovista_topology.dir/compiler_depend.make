# Empty compiler generated dependencies file for rovista_topology.
# This may be replaced when dependencies are built.
