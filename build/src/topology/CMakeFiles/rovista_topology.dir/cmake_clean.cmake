file(REMOVE_RECURSE
  "CMakeFiles/rovista_topology.dir/as_graph.cpp.o"
  "CMakeFiles/rovista_topology.dir/as_graph.cpp.o.d"
  "CMakeFiles/rovista_topology.dir/cone.cpp.o"
  "CMakeFiles/rovista_topology.dir/cone.cpp.o.d"
  "CMakeFiles/rovista_topology.dir/generator.cpp.o"
  "CMakeFiles/rovista_topology.dir/generator.cpp.o.d"
  "librovista_topology.a"
  "librovista_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
