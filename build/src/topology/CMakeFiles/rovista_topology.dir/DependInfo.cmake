
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/as_graph.cpp" "src/topology/CMakeFiles/rovista_topology.dir/as_graph.cpp.o" "gcc" "src/topology/CMakeFiles/rovista_topology.dir/as_graph.cpp.o.d"
  "/root/repo/src/topology/cone.cpp" "src/topology/CMakeFiles/rovista_topology.dir/cone.cpp.o" "gcc" "src/topology/CMakeFiles/rovista_topology.dir/cone.cpp.o.d"
  "/root/repo/src/topology/generator.cpp" "src/topology/CMakeFiles/rovista_topology.dir/generator.cpp.o" "gcc" "src/topology/CMakeFiles/rovista_topology.dir/generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rovista_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
