
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scan/measurement_client.cpp" "src/scan/CMakeFiles/rovista_scan.dir/measurement_client.cpp.o" "gcc" "src/scan/CMakeFiles/rovista_scan.dir/measurement_client.cpp.o.d"
  "/root/repo/src/scan/permutation.cpp" "src/scan/CMakeFiles/rovista_scan.dir/permutation.cpp.o" "gcc" "src/scan/CMakeFiles/rovista_scan.dir/permutation.cpp.o.d"
  "/root/repo/src/scan/scanner.cpp" "src/scan/CMakeFiles/rovista_scan.dir/scanner.cpp.o" "gcc" "src/scan/CMakeFiles/rovista_scan.dir/scanner.cpp.o.d"
  "/root/repo/src/scan/tnode_discovery.cpp" "src/scan/CMakeFiles/rovista_scan.dir/tnode_discovery.cpp.o" "gcc" "src/scan/CMakeFiles/rovista_scan.dir/tnode_discovery.cpp.o.d"
  "/root/repo/src/scan/vvp_discovery.cpp" "src/scan/CMakeFiles/rovista_scan.dir/vvp_discovery.cpp.o" "gcc" "src/scan/CMakeFiles/rovista_scan.dir/vvp_discovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/rovista_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rovista_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rovista_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/rovista_rpki.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rovista_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rovista_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
