file(REMOVE_RECURSE
  "CMakeFiles/rovista_scan.dir/measurement_client.cpp.o"
  "CMakeFiles/rovista_scan.dir/measurement_client.cpp.o.d"
  "CMakeFiles/rovista_scan.dir/permutation.cpp.o"
  "CMakeFiles/rovista_scan.dir/permutation.cpp.o.d"
  "CMakeFiles/rovista_scan.dir/scanner.cpp.o"
  "CMakeFiles/rovista_scan.dir/scanner.cpp.o.d"
  "CMakeFiles/rovista_scan.dir/tnode_discovery.cpp.o"
  "CMakeFiles/rovista_scan.dir/tnode_discovery.cpp.o.d"
  "CMakeFiles/rovista_scan.dir/vvp_discovery.cpp.o"
  "CMakeFiles/rovista_scan.dir/vvp_discovery.cpp.o.d"
  "librovista_scan.a"
  "librovista_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
