# Empty compiler generated dependencies file for rovista_scan.
# This may be replaced when dependencies are built.
