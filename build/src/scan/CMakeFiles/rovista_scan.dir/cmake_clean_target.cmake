file(REMOVE_RECURSE
  "librovista_scan.a"
)
