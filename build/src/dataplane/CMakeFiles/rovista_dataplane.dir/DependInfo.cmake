
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataplane/dataplane.cpp" "src/dataplane/CMakeFiles/rovista_dataplane.dir/dataplane.cpp.o" "gcc" "src/dataplane/CMakeFiles/rovista_dataplane.dir/dataplane.cpp.o.d"
  "/root/repo/src/dataplane/event_sim.cpp" "src/dataplane/CMakeFiles/rovista_dataplane.dir/event_sim.cpp.o" "gcc" "src/dataplane/CMakeFiles/rovista_dataplane.dir/event_sim.cpp.o.d"
  "/root/repo/src/dataplane/host.cpp" "src/dataplane/CMakeFiles/rovista_dataplane.dir/host.cpp.o" "gcc" "src/dataplane/CMakeFiles/rovista_dataplane.dir/host.cpp.o.d"
  "/root/repo/src/dataplane/ipid.cpp" "src/dataplane/CMakeFiles/rovista_dataplane.dir/ipid.cpp.o" "gcc" "src/dataplane/CMakeFiles/rovista_dataplane.dir/ipid.cpp.o.d"
  "/root/repo/src/dataplane/traceroute.cpp" "src/dataplane/CMakeFiles/rovista_dataplane.dir/traceroute.cpp.o" "gcc" "src/dataplane/CMakeFiles/rovista_dataplane.dir/traceroute.cpp.o.d"
  "/root/repo/src/dataplane/traffic.cpp" "src/dataplane/CMakeFiles/rovista_dataplane.dir/traffic.cpp.o" "gcc" "src/dataplane/CMakeFiles/rovista_dataplane.dir/traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rovista_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rovista_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/rovista_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/rovista_rpki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
