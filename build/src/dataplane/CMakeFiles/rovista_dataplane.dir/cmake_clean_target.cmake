file(REMOVE_RECURSE
  "librovista_dataplane.a"
)
