file(REMOVE_RECURSE
  "CMakeFiles/rovista_dataplane.dir/dataplane.cpp.o"
  "CMakeFiles/rovista_dataplane.dir/dataplane.cpp.o.d"
  "CMakeFiles/rovista_dataplane.dir/event_sim.cpp.o"
  "CMakeFiles/rovista_dataplane.dir/event_sim.cpp.o.d"
  "CMakeFiles/rovista_dataplane.dir/host.cpp.o"
  "CMakeFiles/rovista_dataplane.dir/host.cpp.o.d"
  "CMakeFiles/rovista_dataplane.dir/ipid.cpp.o"
  "CMakeFiles/rovista_dataplane.dir/ipid.cpp.o.d"
  "CMakeFiles/rovista_dataplane.dir/traceroute.cpp.o"
  "CMakeFiles/rovista_dataplane.dir/traceroute.cpp.o.d"
  "CMakeFiles/rovista_dataplane.dir/traffic.cpp.o"
  "CMakeFiles/rovista_dataplane.dir/traffic.cpp.o.d"
  "librovista_dataplane.a"
  "librovista_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
