# Empty dependencies file for rovista_dataplane.
# This may be replaced when dependencies are built.
