file(REMOVE_RECURSE
  "librovista_bgpstream.a"
)
