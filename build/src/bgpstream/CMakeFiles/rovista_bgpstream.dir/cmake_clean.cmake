file(REMOVE_RECURSE
  "CMakeFiles/rovista_bgpstream.dir/analysis.cpp.o"
  "CMakeFiles/rovista_bgpstream.dir/analysis.cpp.o.d"
  "CMakeFiles/rovista_bgpstream.dir/hijack.cpp.o"
  "CMakeFiles/rovista_bgpstream.dir/hijack.cpp.o.d"
  "librovista_bgpstream.a"
  "librovista_bgpstream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_bgpstream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
