# Empty compiler generated dependencies file for rovista_bgpstream.
# This may be replaced when dependencies are built.
