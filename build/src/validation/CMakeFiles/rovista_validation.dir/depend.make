# Empty dependencies file for rovista_validation.
# This may be replaced when dependencies are built.
