file(REMOVE_RECURSE
  "librovista_validation.a"
)
