file(REMOVE_RECURSE
  "CMakeFiles/rovista_validation.dir/apnic_dashboard.cpp.o"
  "CMakeFiles/rovista_validation.dir/apnic_dashboard.cpp.o.d"
  "CMakeFiles/rovista_validation.dir/cloudflare_list.cpp.o"
  "CMakeFiles/rovista_validation.dir/cloudflare_list.cpp.o.d"
  "CMakeFiles/rovista_validation.dir/ground_truth.cpp.o"
  "CMakeFiles/rovista_validation.dir/ground_truth.cpp.o.d"
  "CMakeFiles/rovista_validation.dir/single_prefix.cpp.o"
  "CMakeFiles/rovista_validation.dir/single_prefix.cpp.o.d"
  "CMakeFiles/rovista_validation.dir/traceroute_xval.cpp.o"
  "CMakeFiles/rovista_validation.dir/traceroute_xval.cpp.o.d"
  "librovista_validation.a"
  "librovista_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
