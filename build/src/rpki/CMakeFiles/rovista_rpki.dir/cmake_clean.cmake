file(REMOVE_RECURSE
  "CMakeFiles/rovista_rpki.dir/cert.cpp.o"
  "CMakeFiles/rovista_rpki.dir/cert.cpp.o.d"
  "CMakeFiles/rovista_rpki.dir/relying_party.cpp.o"
  "CMakeFiles/rovista_rpki.dir/relying_party.cpp.o.d"
  "CMakeFiles/rovista_rpki.dir/repository.cpp.o"
  "CMakeFiles/rovista_rpki.dir/repository.cpp.o.d"
  "CMakeFiles/rovista_rpki.dir/roa.cpp.o"
  "CMakeFiles/rovista_rpki.dir/roa.cpp.o.d"
  "CMakeFiles/rovista_rpki.dir/rtr.cpp.o"
  "CMakeFiles/rovista_rpki.dir/rtr.cpp.o.d"
  "CMakeFiles/rovista_rpki.dir/slurm.cpp.o"
  "CMakeFiles/rovista_rpki.dir/slurm.cpp.o.d"
  "CMakeFiles/rovista_rpki.dir/validation.cpp.o"
  "CMakeFiles/rovista_rpki.dir/validation.cpp.o.d"
  "librovista_rpki.a"
  "librovista_rpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_rpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
