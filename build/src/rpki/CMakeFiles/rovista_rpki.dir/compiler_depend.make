# Empty compiler generated dependencies file for rovista_rpki.
# This may be replaced when dependencies are built.
