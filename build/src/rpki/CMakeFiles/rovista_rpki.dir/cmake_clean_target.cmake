file(REMOVE_RECURSE
  "librovista_rpki.a"
)
