
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rpki/cert.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/cert.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/cert.cpp.o.d"
  "/root/repo/src/rpki/relying_party.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/relying_party.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/relying_party.cpp.o.d"
  "/root/repo/src/rpki/repository.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/repository.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/repository.cpp.o.d"
  "/root/repo/src/rpki/roa.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/roa.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/roa.cpp.o.d"
  "/root/repo/src/rpki/rtr.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/rtr.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/rtr.cpp.o.d"
  "/root/repo/src/rpki/slurm.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/slurm.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/slurm.cpp.o.d"
  "/root/repo/src/rpki/validation.cpp" "src/rpki/CMakeFiles/rovista_rpki.dir/validation.cpp.o" "gcc" "src/rpki/CMakeFiles/rovista_rpki.dir/validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rovista_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rovista_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
