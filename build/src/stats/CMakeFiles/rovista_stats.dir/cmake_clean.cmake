file(REMOVE_RECURSE
  "CMakeFiles/rovista_stats.dir/adf.cpp.o"
  "CMakeFiles/rovista_stats.dir/adf.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/arima.cpp.o"
  "CMakeFiles/rovista_stats.dir/arima.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/arma.cpp.o"
  "CMakeFiles/rovista_stats.dir/arma.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/diagnostics.cpp.o"
  "CMakeFiles/rovista_stats.dir/diagnostics.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/distributions.cpp.o"
  "CMakeFiles/rovista_stats.dir/distributions.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/ols.cpp.o"
  "CMakeFiles/rovista_stats.dir/ols.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/optimize.cpp.o"
  "CMakeFiles/rovista_stats.dir/optimize.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/spike.cpp.o"
  "CMakeFiles/rovista_stats.dir/spike.cpp.o.d"
  "CMakeFiles/rovista_stats.dir/timeseries.cpp.o"
  "CMakeFiles/rovista_stats.dir/timeseries.cpp.o.d"
  "librovista_stats.a"
  "librovista_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
