
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/adf.cpp" "src/stats/CMakeFiles/rovista_stats.dir/adf.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/adf.cpp.o.d"
  "/root/repo/src/stats/arima.cpp" "src/stats/CMakeFiles/rovista_stats.dir/arima.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/arima.cpp.o.d"
  "/root/repo/src/stats/arma.cpp" "src/stats/CMakeFiles/rovista_stats.dir/arma.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/arma.cpp.o.d"
  "/root/repo/src/stats/diagnostics.cpp" "src/stats/CMakeFiles/rovista_stats.dir/diagnostics.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/diagnostics.cpp.o.d"
  "/root/repo/src/stats/distributions.cpp" "src/stats/CMakeFiles/rovista_stats.dir/distributions.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/distributions.cpp.o.d"
  "/root/repo/src/stats/ols.cpp" "src/stats/CMakeFiles/rovista_stats.dir/ols.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/ols.cpp.o.d"
  "/root/repo/src/stats/optimize.cpp" "src/stats/CMakeFiles/rovista_stats.dir/optimize.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/optimize.cpp.o.d"
  "/root/repo/src/stats/spike.cpp" "src/stats/CMakeFiles/rovista_stats.dir/spike.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/spike.cpp.o.d"
  "/root/repo/src/stats/timeseries.cpp" "src/stats/CMakeFiles/rovista_stats.dir/timeseries.cpp.o" "gcc" "src/stats/CMakeFiles/rovista_stats.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
