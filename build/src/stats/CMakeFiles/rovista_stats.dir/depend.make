# Empty dependencies file for rovista_stats.
# This may be replaced when dependencies are built.
