file(REMOVE_RECURSE
  "librovista_stats.a"
)
