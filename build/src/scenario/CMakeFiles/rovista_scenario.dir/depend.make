# Empty dependencies file for rovista_scenario.
# This may be replaced when dependencies are built.
