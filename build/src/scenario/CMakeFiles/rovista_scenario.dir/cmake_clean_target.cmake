file(REMOVE_RECURSE
  "librovista_scenario.a"
)
