file(REMOVE_RECURSE
  "CMakeFiles/rovista_scenario.dir/fixtures.cpp.o"
  "CMakeFiles/rovista_scenario.dir/fixtures.cpp.o.d"
  "CMakeFiles/rovista_scenario.dir/scenario.cpp.o"
  "CMakeFiles/rovista_scenario.dir/scenario.cpp.o.d"
  "librovista_scenario.a"
  "librovista_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
