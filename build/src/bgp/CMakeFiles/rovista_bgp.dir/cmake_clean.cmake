file(REMOVE_RECURSE
  "CMakeFiles/rovista_bgp.dir/collector.cpp.o"
  "CMakeFiles/rovista_bgp.dir/collector.cpp.o.d"
  "CMakeFiles/rovista_bgp.dir/mrt.cpp.o"
  "CMakeFiles/rovista_bgp.dir/mrt.cpp.o.d"
  "CMakeFiles/rovista_bgp.dir/policy.cpp.o"
  "CMakeFiles/rovista_bgp.dir/policy.cpp.o.d"
  "CMakeFiles/rovista_bgp.dir/route.cpp.o"
  "CMakeFiles/rovista_bgp.dir/route.cpp.o.d"
  "CMakeFiles/rovista_bgp.dir/routing_system.cpp.o"
  "CMakeFiles/rovista_bgp.dir/routing_system.cpp.o.d"
  "librovista_bgp.a"
  "librovista_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
