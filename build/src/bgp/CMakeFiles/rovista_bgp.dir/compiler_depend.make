# Empty compiler generated dependencies file for rovista_bgp.
# This may be replaced when dependencies are built.
