
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/collector.cpp" "src/bgp/CMakeFiles/rovista_bgp.dir/collector.cpp.o" "gcc" "src/bgp/CMakeFiles/rovista_bgp.dir/collector.cpp.o.d"
  "/root/repo/src/bgp/mrt.cpp" "src/bgp/CMakeFiles/rovista_bgp.dir/mrt.cpp.o" "gcc" "src/bgp/CMakeFiles/rovista_bgp.dir/mrt.cpp.o.d"
  "/root/repo/src/bgp/policy.cpp" "src/bgp/CMakeFiles/rovista_bgp.dir/policy.cpp.o" "gcc" "src/bgp/CMakeFiles/rovista_bgp.dir/policy.cpp.o.d"
  "/root/repo/src/bgp/route.cpp" "src/bgp/CMakeFiles/rovista_bgp.dir/route.cpp.o" "gcc" "src/bgp/CMakeFiles/rovista_bgp.dir/route.cpp.o.d"
  "/root/repo/src/bgp/routing_system.cpp" "src/bgp/CMakeFiles/rovista_bgp.dir/routing_system.cpp.o" "gcc" "src/bgp/CMakeFiles/rovista_bgp.dir/routing_system.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rovista_util.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/rovista_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/rovista_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/rpki/CMakeFiles/rovista_rpki.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
