file(REMOVE_RECURSE
  "librovista_bgp.a"
)
