# Empty compiler generated dependencies file for rovista_net.
# This may be replaced when dependencies are built.
