file(REMOVE_RECURSE
  "librovista_net.a"
)
