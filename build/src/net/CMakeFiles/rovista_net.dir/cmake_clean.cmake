file(REMOVE_RECURSE
  "CMakeFiles/rovista_net.dir/headers.cpp.o"
  "CMakeFiles/rovista_net.dir/headers.cpp.o.d"
  "CMakeFiles/rovista_net.dir/ipv4.cpp.o"
  "CMakeFiles/rovista_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/rovista_net.dir/packet.cpp.o"
  "CMakeFiles/rovista_net.dir/packet.cpp.o.d"
  "librovista_net.a"
  "librovista_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
