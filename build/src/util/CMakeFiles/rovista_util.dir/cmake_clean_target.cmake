file(REMOVE_RECURSE
  "librovista_util.a"
)
