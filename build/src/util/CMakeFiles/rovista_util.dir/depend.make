# Empty dependencies file for rovista_util.
# This may be replaced when dependencies are built.
