file(REMOVE_RECURSE
  "CMakeFiles/rovista_util.dir/csv.cpp.o"
  "CMakeFiles/rovista_util.dir/csv.cpp.o.d"
  "CMakeFiles/rovista_util.dir/date.cpp.o"
  "CMakeFiles/rovista_util.dir/date.cpp.o.d"
  "CMakeFiles/rovista_util.dir/logging.cpp.o"
  "CMakeFiles/rovista_util.dir/logging.cpp.o.d"
  "CMakeFiles/rovista_util.dir/rng.cpp.o"
  "CMakeFiles/rovista_util.dir/rng.cpp.o.d"
  "CMakeFiles/rovista_util.dir/strings.cpp.o"
  "CMakeFiles/rovista_util.dir/strings.cpp.o.d"
  "librovista_util.a"
  "librovista_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
