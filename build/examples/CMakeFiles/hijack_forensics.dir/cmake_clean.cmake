file(REMOVE_RECURSE
  "CMakeFiles/hijack_forensics.dir/hijack_forensics.cpp.o"
  "CMakeFiles/hijack_forensics.dir/hijack_forensics.cpp.o.d"
  "hijack_forensics"
  "hijack_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hijack_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
