file(REMOVE_RECURSE
  "CMakeFiles/collateral_analysis.dir/collateral_analysis.cpp.o"
  "CMakeFiles/collateral_analysis.dir/collateral_analysis.cpp.o.d"
  "collateral_analysis"
  "collateral_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collateral_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
