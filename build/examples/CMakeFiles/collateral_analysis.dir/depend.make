# Empty dependencies file for collateral_analysis.
# This may be replaced when dependencies are built.
