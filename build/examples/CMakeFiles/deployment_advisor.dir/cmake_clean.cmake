file(REMOVE_RECURSE
  "CMakeFiles/deployment_advisor.dir/deployment_advisor.cpp.o"
  "CMakeFiles/deployment_advisor.dir/deployment_advisor.cpp.o.d"
  "deployment_advisor"
  "deployment_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deployment_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
