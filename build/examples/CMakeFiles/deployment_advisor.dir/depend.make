# Empty dependencies file for deployment_advisor.
# This may be replaced when dependencies are built.
