# Empty dependencies file for rov_audit.
# This may be replaced when dependencies are built.
