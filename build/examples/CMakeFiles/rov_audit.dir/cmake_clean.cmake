file(REMOVE_RECURSE
  "CMakeFiles/rov_audit.dir/rov_audit.cpp.o"
  "CMakeFiles/rov_audit.dir/rov_audit.cpp.o.d"
  "rov_audit"
  "rov_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rov_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
