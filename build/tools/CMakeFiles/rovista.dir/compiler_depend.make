# Empty compiler generated dependencies file for rovista.
# This may be replaced when dependencies are built.
