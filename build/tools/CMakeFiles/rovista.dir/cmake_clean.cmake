file(REMOVE_RECURSE
  "CMakeFiles/rovista.dir/rovista_cli.cpp.o"
  "CMakeFiles/rovista.dir/rovista_cli.cpp.o.d"
  "rovista"
  "rovista.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rovista.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
